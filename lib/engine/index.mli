(** Physical secondary indexes: a {!Cddpd_storage.Btree} keyed by the
    indexed column values with the rid appended, so that duplicate column
    values remain distinct keys and prefix scans recover the rids.

    Indexes are restricted to integer columns (text keys would need
    order-preserving encoding, which the paper's workloads never use). *)

type t

val build :
  Cddpd_storage.Buffer_pool.t ->
  Cddpd_catalog.Schema.table ->
  Cddpd_storage.Heap_file.t ->
  Cddpd_catalog.Index_def.t ->
  t
(** Scan the heap, sort, and bulk-load the tree.  The sort packs each key
    into a single word whenever the observed component ranges fit 62 bits
    (they essentially always do) and sorts the packed ints monomorphically
    ({!Cddpd_util.Int_sort}).  Raises [Invalid_argument] if the definition
    references a missing or non-integer column. *)

val build_of_rows :
  Cddpd_storage.Buffer_pool.t ->
  Cddpd_catalog.Schema.table ->
  Cddpd_catalog.Index_def.t ->
  rows:Cddpd_storage.Tuple.t array ->
  rids:Cddpd_storage.Heap_file.rid array ->
  t
(** Like {!build}, but over an in-memory batch of (row, rid) pairs instead
    of a heap scan — the bulk-load fast path for a table whose heap holds
    exactly these rows.  The caller is responsible for that invariant;
    rows already in the heap but absent from the batch are simply missing
    from the tree.  Raises [Invalid_argument] on length mismatch or a bad
    column. *)

val def : t -> Cddpd_catalog.Index_def.t

val insert_entry : t -> Cddpd_storage.Tuple.t -> Cddpd_storage.Heap_file.rid -> unit
(** Index maintenance after a heap insert. *)

val delete_entry : t -> Cddpd_storage.Tuple.t -> Cddpd_storage.Heap_file.rid -> bool
(** Index maintenance after a heap delete; returns whether the entry was
    present. *)

val columns : t -> string list
(** The key columns, in index order. *)

val probe :
  t ->
  eq_prefix:int list ->
  range:(Plan.range_bound option * Plan.range_bound option) option ->
  Cddpd_storage.Heap_file.rid list
(** Rids whose column values match the equality prefix and optional range
    bound on the following column, in key order.  Raises
    [Invalid_argument] if the prefix is longer than the key. *)

val probe_entries :
  t ->
  eq_prefix:int list ->
  range:(Plan.range_bound option * Plan.range_bound option) option ->
  int array list
(** Like {!probe} but returns the logical key values (one [int array] per
    matching entry, in index-column order) — the data a covering seek
    answers from without heap access. *)

val scan_entries : t -> (int array -> unit) -> unit
(** Iterate every entry's logical key values in key order: the access path
    behind {!Plan.Index_only_scan}. *)

val probe_slices :
  t ->
  eq_prefix:int list ->
  range:(Plan.range_bound option * Plan.range_bound option) option ->
  (bytes -> int -> unit) ->
  unit
(** Zero-allocation variant of {!probe_entries}: the callback receives the
    leaf page buffer and the byte offset of each matching entry (key
    column [j]'s value at [offset + 8 * j]), valid only during the
    call. *)

val scan_slices : t -> (bytes -> int -> unit) -> unit
(** Zero-allocation variant of {!scan_entries}: the callback receives the
    leaf page buffer and the byte offset of the entry (key column [j]'s
    value is the 64-bit little-endian integer at [offset + 8 * j]), valid
    only during the call. *)

val height : t -> int

val n_pages : t -> int

val n_entries : t -> int
