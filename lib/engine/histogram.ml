type bucket = {
  lo : int; (* smallest value in the bucket *)
  hi : int; (* largest value in the bucket *)
  count : int; (* rows in the bucket *)
  distinct : int; (* distinct values in the bucket *)
}

type t = { total : int; total_distinct : int; buckets : bucket array }

let build ?(buckets = 64) values =
  if buckets <= 0 then invalid_arg "Histogram.build: buckets <= 0";
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  let n = Array.length sorted in
  if n = 0 then { total = 0; total_distinct = 0; buckets = [||] }
  else begin
    let per_bucket = max 1 ((n + buckets - 1) / buckets) in
    let out = ref [] in
    let total_distinct = ref 0 in
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let stop = min n (start + per_bucket) in
      (* Extend the bucket so equal values never straddle a boundary. *)
      let stop = ref stop in
      while !stop < n && sorted.(!stop) = sorted.(!stop - 1) do
        incr stop
      done;
      let stop = !stop in
      let distinct = ref 1 in
      for j = start + 1 to stop - 1 do
        if sorted.(j) <> sorted.(j - 1) then incr distinct
      done;
      total_distinct := !total_distinct + !distinct;
      out :=
        { lo = sorted.(start); hi = sorted.(stop - 1); count = stop - start; distinct = !distinct }
        :: !out;
      i := stop
    done;
    { total = n; total_distinct = !total_distinct; buckets = Array.of_list (List.rev !out) }
  end

let n_values t = t.total

let n_distinct t = t.total_distinct

let fingerprint t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "h:%d:%d" t.total t.total_distinct);
  Array.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf ";%d,%d,%d,%d" b.lo b.hi b.count b.distinct))
    t.buckets;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let min_value t =
  if Array.length t.buckets = 0 then None else Some t.buckets.(0).lo

let max_value t =
  let n = Array.length t.buckets in
  if n = 0 then None else Some t.buckets.(n - 1).hi

let selectivity_eq t v =
  if t.total = 0 then 0.0
  else
    let matching =
      Array.fold_left
        (fun acc b ->
          if v >= b.lo && v <= b.hi then
            acc +. (float_of_int b.count /. float_of_int (max 1 b.distinct))
          else acc)
        0.0 t.buckets
    in
    let sel = matching /. float_of_int t.total in
    (* Never report exactly zero for an in-range probe: the optimizer should
       not believe lookups are free. *)
    if sel <= 0.0 then 0.5 /. float_of_int t.total else min 1.0 sel

(* Fraction of bucket [b] that intersects [lo, hi], assuming values spread
   uniformly over [b.lo, b.hi]. *)
let bucket_overlap b ~lo ~hi =
  let b_lo = float_of_int b.lo and b_hi = float_of_int b.hi in
  let lo = match lo with None -> b_lo | Some v -> float_of_int v in
  let hi = match hi with None -> b_hi | Some v -> float_of_int v in
  if hi < b_lo || lo > b_hi then 0.0
  else if Float.equal b_hi b_lo then 1.0
  else
    let clamped_lo = max lo b_lo and clamped_hi = min hi b_hi in
    (clamped_hi -. clamped_lo) /. (b_hi -. b_lo)

let selectivity_range t ~lo ~hi =
  if t.total = 0 then 0.0
  else begin
    (match (lo, hi) with
    | Some l, Some h when l > h -> invalid_arg "Histogram.selectivity_range: lo > hi"
    | _ -> ());
    let matching =
      Array.fold_left
        (fun acc b -> acc +. (bucket_overlap b ~lo ~hi *. float_of_int b.count))
        0.0 t.buckets
    in
    Float.max 0.0 (Float.min 1.0 (matching /. float_of_int t.total))
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>histogram: %d values, %d distinct@," t.total t.total_distinct;
  Array.iter
    (fun b ->
      Format.fprintf ppf "  [%d, %d] count=%d distinct=%d@," b.lo b.hi b.count b.distinct)
    t.buckets;
  Format.fprintf ppf "@]"
