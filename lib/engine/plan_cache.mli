(** Plan-choice memo keyed on [Cost_key.statement_under_design] strings.

    The key is self-fencing against statistics churn — it embeds the
    statistics shape and the exact selectivity bits of every predicate —
    so a hit is guaranteed to carry the bit-identical plan shape and
    estimator floats a fresh [Cost_model.choose_plan] would produce.
    Literal bindings inside the cached path must still be rebound per
    statement (see [Cost_model.rebind_select_plan]).  Single-domain. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** design-change flushes of a non-empty table *)
  entries : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Overflow resets the table wholesale; entries are pure memos. *)

val stats : t -> stats

val find : t -> string -> Plan.t option
(** Lookup; counts a hit or a miss. *)

val store : t -> string -> Plan.t -> unit

val invalidate : t -> unit
(** Flush after a deployed-design change.  No-op (and not counted) when
    the table is already empty. *)
