(** The database façade: storage, catalog, statistics, planning and
    execution in one handle.

    This plays the role SQL Server played in the paper's experiments: it
    holds the data, materialises whatever physical design the advisor (or
    the simulator) asks for, executes statements with measured I/O, and
    exposes the what-if cost model through its statistics. *)

type t

val create :
  ?pool_capacity:int ->
  ?readahead:int ->
  ?params:Cost_model.params ->
  Cddpd_catalog.Schema.table list ->
  t
(** A fresh database with the given schema.  [pool_capacity] is the buffer
    pool size in pages (default 256); [readahead] is the pool's sequential
    prefetch budget (see {!Cddpd_storage.Buffer_pool.create}; [0]
    disables readahead — logical I/O is unaffected either way). *)

val params : t -> Cost_model.params

val schema : t -> string -> Cddpd_catalog.Schema.table option

val tables : t -> Cddpd_catalog.Schema.table list

val load : ?bulk:bool -> t -> table:string -> Cddpd_storage.Tuple.t array -> unit
(** Bulk-append tuples, maintaining any existing indexes and views, and
    invalidate the table's statistics (recomputed lazily at the next
    {!table_stats}/{!analyze}).  With [bulk] (the default) and at least
    one existing structure, rows go heap-first and each structure is then
    rebuilt once via a sorted bulk load — same resulting logical state as
    the row-at-a-time path ([bulk:false]), built in O(n log n) instead of
    one tree descent per row per structure; the bulk path also validates
    every row before mutating anything.  Raises [Invalid_argument] on
    schema mismatch. *)

val row_count : t -> string -> int

val analyze : t -> unit
(** (Re)collect statistics for every table. *)

val table_stats : t -> string -> Table_stats.t
(** Statistics for the table, computing them if stale.  Raises
    [Invalid_argument] on an unknown table. *)

val stats_generation : t -> string -> int
(** The table's statistics generation: bumped by every invalidation (DML,
    {!load}) and every {!analyze} replacement, but not by lazy
    materialization.  Within one generation at most one snapshot exists,
    so generation equality proves two {!table_stats} results are
    physically the same object — the fence serve's one-pass cost-identity
    pipeline keys on. *)

(** {1 Physical design} *)

val current_design : t -> Cddpd_catalog.Design.t
(** The materialised design, assembled in declared table order so the
    result is deterministic across processes and hash seeds.  Memoized;
    recomputed only after a structure change. *)

val design_key : t -> string
(** [Cost_key.design (current_design t)], memoized alongside the design. *)

val build_index : t -> Cddpd_catalog.Index_def.t -> unit
(** Materialise an index (no-op if already present). *)

val drop_index : t -> Cddpd_catalog.Index_def.t -> unit
(** Remove an index (no-op if absent). *)

val migrate_to : t -> Cddpd_catalog.Design.t -> unit
(** Build and drop indexes so the materialised design equals the target —
    the physical realisation of a TRANS step. *)

(** {1 Execution} *)

type exec_result = {
  rows : Cddpd_storage.Tuple.t list;  (** result rows, in access order *)
  affected : int;  (** rows inserted / deleted / updated *)
  plan : Plan.t option;
      (** the chosen plan (selects and the find phase of DELETE/UPDATE) *)
  logical_io : int;  (** buffer pool page accesses *)
  physical_io : int;  (** disk page reads *)
}

val execute :
  ?statement_key:string -> ?skip_check:bool -> t -> Cddpd_sql.Ast.statement -> exec_result
(** Validate, plan, and run one statement.  Raises [Invalid_argument] on
    semantic errors.

    [statement_key] engages the plan-choice memo for SELECT and aggregate
    statements: it must be [Cost_key.statement] of this statement under
    the table's *current* statistics (see {!stats_generation}).  A memo
    hit skips {!Cost_model.choose_plan} and returns the bit-identical
    plan with this statement's literals rebound; results and I/O are
    unchanged.  [skip_check] (default [false]) skips semantic validation;
    only pass [true] for a statement that already passed it against an
    unchanged schema, as serve's template cache does. *)

val plan_cache_stats : t -> Plan_cache.stats
(** Hit/miss/invalidation counters of the plan-choice memo. *)

val execute_sql : t -> string -> exec_result
(** Parse then {!execute}.  Raises [Cddpd_sql.Parser.Parse_error] or
    [Invalid_argument]. *)

(** {1 Measurement} *)

val io_counters : t -> int * int
(** Cumulative (logical, physical) I/O since creation or the last reset. *)

val reset_io_counters : t -> unit

val drop_buffer_cache : t -> unit
(** Force the next accesses to hit the simulated disk (cold cache). *)
