module Ast = Cddpd_sql.Ast
module Index_def = Cddpd_catalog.Index_def

type range_bound = { op : Ast.cmp; value : int }

type access_path =
  | Full_scan
  | Index_seek of {
      index : Index_def.t;
      eq_prefix : int list;
      range : (range_bound option * range_bound option) option;
      covering : bool;
    }
  | Index_only_scan of { index : Index_def.t }
  | View_probe of {
      view : Cddpd_catalog.View_def.t;
      group_value : int option;
    }

type t = { path : access_path; estimated_rows : float; estimated_cost : float }

(* -- observability ----------------------------------------------------------- *)

module Obs = Cddpd_obs

let m_full_scan = Obs.Registry.counter "plan.chosen.full_scan"
let m_index_seek = Obs.Registry.counter "plan.chosen.index_seek"
let m_index_only_scan = Obs.Registry.counter "plan.chosen.index_only_scan"
let m_view_probe = Obs.Registry.counter "plan.chosen.view_probe"

let count_choice t =
  Obs.Counter.incr
    (match t.path with
    | Full_scan -> m_full_scan
    | Index_seek _ -> m_index_seek
    | Index_only_scan _ -> m_index_only_scan
    | View_probe _ -> m_view_probe)

let cmp_to_string op =
  match op with
  | Ast.Eq -> "="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let pp_access_path ppf path =
  match path with
  | Full_scan -> Format.pp_print_string ppf "full scan"
  | Index_seek { index; eq_prefix; range; covering } ->
      Format.fprintf ppf "seek %s eq=(%s)%s" (Index_def.name index)
        (String.concat "," (List.map string_of_int eq_prefix))
        (if covering then " covering" else "");
      (match range with
      | None -> ()
      | Some (lo, hi) ->
          let bound_to_string b =
            match b with
            | None -> ""
            | Some { op; value } -> Printf.sprintf "%s%d" (cmp_to_string op) value
          in
          Format.fprintf ppf " range=[%s;%s]" (bound_to_string lo) (bound_to_string hi))
  | Index_only_scan { index } ->
      Format.fprintf ppf "index-only scan %s" (Index_def.name index)
  | View_probe { view; group_value } -> (
      match group_value with
      | Some v ->
          Format.fprintf ppf "view probe %s g=%d" (Cddpd_catalog.View_def.name view) v
      | None -> Format.fprintf ppf "view scan %s" (Cddpd_catalog.View_def.name view))

let pp ppf t =
  Format.fprintf ppf "%a (rows=%.1f cost=%.2f)" pp_access_path t.path
    t.estimated_rows t.estimated_cost
