(** Per-table statistics used for cardinality estimation.

    Row count, heap page count, and one histogram per integer column.
    Predicates on text columns fall back to a default selectivity. *)

type t

val make :
  row_count:int ->
  page_count:int ->
  histograms:(string * Histogram.t) list ->
  t
(** Assemble statistics (normally done by [Database.analyze]). *)

val row_count : t -> int

val page_count : t -> int

val histogram : t -> string -> Histogram.t option
(** The column's histogram, if one was collected. *)

val n_histograms : t -> int
(** Number of columns with histograms (the table's integer columns). *)

val fingerprint : t -> string
(** Digest of everything the cost model can read from these statistics:
    row count, page count, and every histogram's full contents (via
    {!Histogram.fingerprint}).  Equal fingerprints imply every
    cost-model estimate over the two statistics snapshots is
    bit-identical — the invalidation test for state (memoized build
    costs, precomputed {!Cost_key} statement keys) that outlives a
    statistics refresh. *)

val default_selectivity : float
(** Fallback selectivity (0.1) used when no histogram is available. *)

val predicate_selectivity : t -> Cddpd_sql.Ast.predicate -> float
(** Estimated fraction of rows satisfying the predicate. *)

val conjunction_selectivity : t -> Cddpd_sql.Ast.predicate list -> float
(** Product of per-predicate selectivities (independence assumption). *)

val estimate_rows : t -> Cddpd_sql.Ast.predicate list -> float
(** [conjunction_selectivity * row_count]. *)
