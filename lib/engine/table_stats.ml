module Ast = Cddpd_sql.Ast
module Tuple = Cddpd_storage.Tuple

type t = {
  row_count : int;
  page_count : int;
  histograms : (string * Histogram.t) list;
}

let make ~row_count ~page_count ~histograms = { row_count; page_count; histograms }

let row_count t = t.row_count

let page_count t = t.page_count

let histogram t column = List.assoc_opt column t.histograms

let n_histograms t = List.length t.histograms

let fingerprint t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "ts:%d:%d" t.row_count t.page_count);
  List.iter
    (fun (column, h) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf column;
      Buffer.add_char buf '=';
      Buffer.add_string buf (Histogram.fingerprint h))
    t.histograms;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let default_selectivity = 0.1

let int_value v = match v with Tuple.Int i -> Some i | Tuple.Text _ -> None

let predicate_selectivity t pred =
  match pred with
  | Ast.Cmp { column; op; value } -> (
      match (histogram t column, int_value value) with
      | Some h, Some v -> (
          match op with
          | Ast.Eq -> Histogram.selectivity_eq h v
          | Ast.Lt -> Histogram.selectivity_range h ~lo:None ~hi:(Some (v - 1))
          | Ast.Le -> Histogram.selectivity_range h ~lo:None ~hi:(Some v)
          | Ast.Gt -> Histogram.selectivity_range h ~lo:(Some (v + 1)) ~hi:None
          | Ast.Ge -> Histogram.selectivity_range h ~lo:(Some v) ~hi:None)
      | None, _ | _, None -> default_selectivity)
  | Ast.Between { column; low; high } -> (
      match (histogram t column, int_value low, int_value high) with
      | Some h, Some lo, Some hi when lo <= hi ->
          Histogram.selectivity_range h ~lo:(Some lo) ~hi:(Some hi)
      | Some _, Some _, Some _ -> 0.0
      | _ -> default_selectivity)

let conjunction_selectivity t preds =
  List.fold_left (fun acc pred -> acc *. predicate_selectivity t pred) 1.0 preds

let estimate_rows t preds =
  conjunction_selectivity t preds *. float_of_int t.row_count
