(** The online continuous advisor: a long-running serve loop over a live
    statement stream.

    [Server] turns the offline advisor into the observe → recommend →
    validate → rollback production loop (AIM-style).  Statements are
    executed against the database as they arrive (the loop *is* the
    server) and buffered into fixed-size windows.  Each window close:

    + histogram the window by cost identity and compare with the previous
      window ({!Drift}) — the observe step;
    + if a deployment is on probation, check the window's *measured* I/O
      against the what-if cost of the pre-deployment design and roll back
      on regression — the rollback step;
    + otherwise act per regime: [Continuous] re-optimizes on drift (a
      constrained sequence-graph problem over the last [history] windows,
      seeded with the current materialised design as C0, solved by the
      configured method) and deploys only transitions the regret guard
      accepts ({!Guard}) — recommend + validate; [Reactive] applies the
      {!Cddpd_core.Online_tuner} policy every window with no safety layer
      (the related-work baseline); [Static] never changes the design.

    The three regimes run in this one harness so they are comparable on
    identical traffic: same windows, same drift bookkeeping, same I/O
    accounting.

    Determinism: the loop is single-domain; re-optimization reuses
    {!Cddpd_core.Problem.build} (Domain-parallel) and the pruned k-aware
    DP, both bit-identical at any job count, so the whole report is
    reproducible at any [jobs] setting.  Index builds at deployment go
    through {!Cddpd_engine.Database.migrate_to}, i.e. sorted
    {!Cddpd_storage.Btree.bulk_load}s.

    Obs: the loop publishes the [serve.*] counters/histograms and the
    [serve.window] / [serve.reoptimize] / [serve.deploy] spans catalogued
    in docs/OBSERVABILITY.md. *)

type regime = Static | Reactive | Continuous

val regime_to_string : regime -> string

val regime_of_string : string -> (regime, string) result

type config = {
  table : string;  (** the table under design *)
  regime : regime;
  window : int;  (** statements per window (default 500) *)
  history : int;  (** windows per re-optimization problem (default 4) *)
  horizon : int;  (** windows the guard projects forward (default 4) *)
  drift_threshold : float;
      (** L1 distance that counts as drift (default
          {!Drift.default_threshold}); non-positive = re-optimize every
          window *)
  regret_budget : float;
      (** accept a transition only if its projected regret against C0 is
          at most this many cost units (default 0) *)
  rollback_factor : float;
      (** roll back when a probation window's measured I/O exceeds this
          multiple of the pre-deployment design's what-if cost
          (default 1.5) *)
  k : int;  (** change budget per re-optimization (default 2) *)
  method_name : Cddpd_core.Solution.method_name;  (** default [Kaware] *)
  composite_pairs : int;  (** candidate generation knob (default 2) *)
  max_structures_per_config : int option;  (** default [Some 1] *)
  space_bound_bytes : int option;  (** Definition 1's b, if any *)
  jobs : int option;  (** domains for {!Cddpd_core.Problem.build} *)
  reopt_reuse : bool;
      (** thread a persistent {!Cddpd_core.Reopt} session through
          re-optimizations (default [true]); [false] is the
          [--no-reopt-reuse] escape hatch — every re-optimization builds
          from scratch, with bit-identical results *)
  template_cache : bool;
      (** parse arriving SQL through a statement-template cache: distinct
          texts cache their parsed AST, repeated statement *shapes* share
          one skeleton with literals rebound (default [true]); [false] is
          the [--no-template-cache] escape hatch — {!feed_sql} parses
          every text from scratch, with bit-identical results *)
  plan_cache : bool;
      (** memoize plan choice on (cost identity, design) for read-only
          statements against the served table, and what-if probation costs
          through a {!Cddpd_engine.Cost_cache} (default [true]); [false]
          is the [--no-plan-cache] escape hatch — every statement is
          planned from scratch, with bit-identical results *)
}

val default_config : table:string -> config

(** What the loop did at one window close. *)
type action =
  | No_action  (** no re-optimization ran (no drift, or [Static]) *)
  | Held of Guard.projection option
      (** re-optimized; recommendation was the incumbent design (or the
          solver gave up), nothing deployed *)
  | Deployed of {
      design : Cddpd_catalog.Design.t;
      projection : Guard.projection option;
          (** [None] for [Reactive] deployments (no guard ran) *)
      build_io : int;  (** logical I/O of the migration *)
    }
  | Rejected of {
      design : Cddpd_catalog.Design.t;
      projection : Guard.projection;  (** why the guard said no *)
    }
  | Rolled_back of {
      restored : Cddpd_catalog.Design.t;
      measured : float;  (** the probation window's measured logical I/O *)
      expected : float;  (** what-if cost under the restored design *)
      build_io : int;  (** logical I/O of the restoring migration *)
    }

type window_report = {
  index : int;  (** 0-based window number *)
  n_statements : int;
  design : Cddpd_catalog.Design.t;  (** the design that served this window *)
  exec_logical_io : int;  (** measured I/O of executing the window *)
  drift : float option;  (** distance to the previous window; [None] first *)
  drifted : bool;
  action : action;
  reopt_s : float;  (** wall seconds spent re-optimizing (0 when none ran) *)
  reopt_whatif_calls : int;
      (** what-if cost-model calls ([cost_model.calls]) this window's
          re-optimization made — build, solve and guard together; 0 when
          none ran or when instrumentation is off *)
}

type report = {
  regime : regime;
  windows : window_report array;
  statements : int;  (** statements executed, residual included *)
  residual_statements : int;  (** fed but still in the open window at finish *)
  drift_events : int;
  reoptimizations : int;
  deployments : int;
  rejections : int;
  rollbacks : int;
  exec_logical_io : int;  (** total measured execution I/O, residual included *)
  trans_logical_io : int;  (** total migration I/O (deployments + rollbacks) *)
  final_design : Cddpd_catalog.Design.t;
  reopt : Cddpd_core.Reopt.stats;
      (** the re-optimization session's accounting: builds, reuse tallies,
          warm-start bounds, and the persistent cost cache's
          hits/misses/evictions/generations *)
}

type t

val create :
  ?on_window:(window_report -> unit) -> Cddpd_engine.Database.t -> config -> t
(** A serve loop over the database.  [on_window] is called at each window
    close, after the window's control decisions — the streaming status
    hook the CLI prints from.  Raises [Invalid_argument] on a non-positive
    [window], [history] or [horizon], or an unknown [table]. *)

val config : t -> config

val reopt_stats : t -> Cddpd_core.Reopt.stats
(** Live re-optimization session accounting (also included in
    {!finish}'s report) — cache generations and evictions between
    re-optimizations, reuse tallies, warm-start bounds. *)

val feed : t -> Cddpd_sql.Ast.statement -> window_report option
(** Execute one arriving statement and buffer it; when it completes a
    window, run the window-close protocol and return its report.
    Read-only statements are cost-keyed on arrival under the current
    statistics generation, so the window close reuses instead of
    recomputing their identities (see
    {!Cddpd_engine.Database.stats_generation}). *)

val feed_sql : t -> string -> (window_report option, string) result
(** Parse one arriving statement text and {!feed} it — the ingest fast
    path.  With [config.template_cache] on, parsing goes through
    {!Cddpd_sql.Parser.parse_cached}: repeated texts reuse their AST,
    cost key, and semantic validation; repeated shapes reparse nothing.
    [Error] carries the parse error message; nothing was executed. *)

val template_stats : t -> Cddpd_sql.Template.stats option
(** The statement-template cache's hit/miss counters; [None] when
    [config.template_cache] is off. *)

val finish : t -> report
(** The run summary.  Statements still in the open window have been
    executed (they were served on arrival) but took part in no window
    decision; they are counted as [residual_statements].  The loop can
    keep feeding after [finish] — the report is a snapshot. *)

val run :
  ?on_window:(window_report -> unit) ->
  Cddpd_engine.Database.t ->
  config ->
  Cddpd_sql.Ast.statement array ->
  report
(** [create], [feed] the whole trace, [finish] — the [--once] mode. *)
