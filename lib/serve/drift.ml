module Cost_key = Cddpd_engine.Cost_key
module Compress = Cddpd_workload.Compress

type profile = (string * float) list

let profile_of_clustering ~keys clustering =
  let n = Array.length keys in
  if n = 0 then []
  else begin
    let total = float_of_int n in
    let reps = clustering.Compress.representatives in
    let counts = clustering.Compress.counts in
    List.init (Array.length reps) (fun id ->
        (keys.(reps.(id)), float_of_int counts.(id) /. total))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  end

let profile ~stats statements =
  let keys = Array.map (fun s -> Cost_key.statement stats s) statements in
  profile_of_clustering ~keys (Compress.cluster_keys keys)

let distance a b =
  let rec go a b acc =
    match (a, b) with
    | [], [] -> acc
    | (_, fa) :: ra, [] -> go ra [] (acc +. fa)
    | [], (_, fb) :: rb -> go [] rb (acc +. fb)
    | (ka, fa) :: ra, (kb, fb) :: rb ->
        let c = String.compare ka kb in
        if c = 0 then go ra rb (acc +. Float.abs (fa -. fb))
        else if c < 0 then go ra b (acc +. fa)
        else go a rb (acc +. fb)
  in
  go a b 0.0

let default_threshold = 0.5

let drifted ?(threshold = default_threshold) a b = distance a b > threshold
