module Cost_key = Cddpd_engine.Cost_key

type profile = (string * float) list

let profile ~stats statements =
  let n = Array.length statements in
  if n = 0 then []
  else begin
    (* cddpd-lint: allow poly-hash — string cost-identity keys *)
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun statement ->
        let key = Cost_key.statement stats statement in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
      statements;
    let total = float_of_int n in
    Hashtbl.fold (fun key count acc -> (key, float_of_int count /. total) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  end

let distance a b =
  let rec go a b acc =
    match (a, b) with
    | [], [] -> acc
    | (_, fa) :: ra, [] -> go ra [] (acc +. fa)
    | [], (_, fb) :: rb -> go [] rb (acc +. fb)
    | (ka, fa) :: ra, (kb, fb) :: rb ->
        let c = String.compare ka kb in
        if c = 0 then go ra rb (acc +. Float.abs (fa -. fb))
        else if c < 0 then go ra b (acc +. fa)
        else go a rb (acc +. fb)
  in
  go a b 0.0

let default_threshold = 0.5

let drifted ?(threshold = default_threshold) a b = distance a b > threshold
