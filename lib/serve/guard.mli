(** The safety layer: what-if validation of a recommended transition
    against a regret budget.

    The serve loop's re-optimizer solves over the *past* few windows; the
    guard asks whether acting on that recommendation is safe for the
    *future*.  In the style of the DBA-bandits safety argument (regret
    bounded against the incumbent design) and AIM's validate step, it
    projects the most recent window forward [horizon] windows and compares
    two what-if totals:

    - [baseline]  — keep serving on the incumbent design [C0]:
      [horizon * EXEC(last window, C0)];
    - [projected] — deploy the recommended design [D]:
      [TRANS(C0, D) + horizon * EXEC(last window, D)].

    The [regret] of deploying is [projected - baseline].  A transition is
    accepted only when [regret <= budget]; with the default budget of 0
    the deployment must pay for its own build cost within the horizon.
    Because every quantity comes from the same what-if cost matrices the
    solver used, the guard is deterministic and adds no cost-model calls
    (the matrices are already built).

    What the guard protects against: heuristic solvers (merging, budgeted
    ranking) whose final design may not beat the incumbent; exact solvers
    whose optimum over the history ends in a design that only paid off in
    windows that have already passed; and over-eager transitions whose
    build cost cannot be amortized before the workload moves on.  What it
    cannot protect against — the future not resembling the last window —
    is the rollback path's job ({!Server}). *)

type projection = {
  target : int;  (** config id of the assessed design *)
  baseline : float;  (** projected cost of staying on C0 *)
  projected : float;  (** projected cost of deploying, build included *)
  regret : float;  (** [projected - baseline] *)
}

type verdict =
  | No_change  (** the recommendation is the incumbent design itself *)
  | Accept of projection  (** [regret <= budget]: safe to deploy *)
  | Reject of projection  (** projected to lose more than the budget *)

val assess :
  Cddpd_core.Problem.t -> target:int -> horizon:int -> budget:float -> verdict
(** Assess deploying config [target] of the problem's space, taking the
    problem's [initial] as the incumbent C0 and its last step as the most
    recent window.  Raises [Invalid_argument] if [horizon < 1] or [target]
    is out of range. *)
