module Ast = Cddpd_sql.Ast
module Parser = Cddpd_sql.Parser
module Template = Cddpd_sql.Template
module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Database = Cddpd_engine.Database
module Cost_model = Cddpd_engine.Cost_model
module Cost_cache = Cddpd_engine.Cost_cache
module Problem = Cddpd_core.Problem
module Config_space = Cddpd_core.Config_space
module Advisor = Cddpd_core.Advisor
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Online_tuner = Cddpd_core.Online_tuner
module Reopt = Cddpd_core.Reopt
module Table_stats = Cddpd_engine.Table_stats
module Compress = Cddpd_workload.Compress
module Cost_key = Cddpd_engine.Cost_key
module Timer = Cddpd_util.Timer
module Obs = Cddpd_obs

let m_windows = Obs.Registry.counter "serve.windows"
let m_statements = Obs.Registry.counter "serve.statements"
let m_drift_events = Obs.Registry.counter "serve.drift_events"
let m_reoptimizations = Obs.Registry.counter "serve.reoptimizations"
let m_deployments = Obs.Registry.counter "serve.deployments"
let m_rejections = Obs.Registry.counter "serve.rejections"
let m_rollbacks = Obs.Registry.counter "serve.rollbacks"
let m_window_io = Obs.Registry.histogram "serve.window_io"
let m_regret = Obs.Registry.histogram "serve.regret"
let m_reopt_s = Obs.Registry.histogram "serve.reopt_s"
let m_ingest_rate = Obs.Registry.histogram "serve.ingest_statements_per_s"

(* The engine's what-if call counter (get-or-create returns the same
   counter Cost_model registered), snapshotted around each
   re-optimization so every window report carries its what-if bill.
   Deltas are zero when instrumentation is off. *)
let m_cost_model_calls = Obs.Registry.counter "cost_model.calls"

type regime = Static | Reactive | Continuous

let regime_to_string = function
  | Static -> "static"
  | Reactive -> "reactive"
  | Continuous -> "continuous"

let regime_of_string s =
  match String.lowercase_ascii s with
  | "static" -> Ok Static
  | "reactive" -> Ok Reactive
  | "continuous" -> Ok Continuous
  | other -> Error (Printf.sprintf "unknown regime %s (static|reactive|continuous)" other)

type config = {
  table : string;
  regime : regime;
  window : int;
  history : int;
  horizon : int;
  drift_threshold : float;
  regret_budget : float;
  rollback_factor : float;
  k : int;
  method_name : Solution.method_name;
  composite_pairs : int;
  max_structures_per_config : int option;
  space_bound_bytes : int option;
  jobs : int option;
  reopt_reuse : bool;
  template_cache : bool;
  plan_cache : bool;
}

let default_config ~table =
  {
    table;
    regime = Continuous;
    window = 500;
    history = 4;
    horizon = 4;
    drift_threshold = Drift.default_threshold;
    regret_budget = 0.0;
    rollback_factor = 1.5;
    k = 2;
    method_name = Solution.Kaware;
    composite_pairs = 2;
    max_structures_per_config = Some 1;
    space_bound_bytes = None;
    jobs = None;
    reopt_reuse = true;
    template_cache = true;
    plan_cache = true;
  }

type action =
  | No_action
  | Held of Guard.projection option
  | Deployed of {
      design : Design.t;
      projection : Guard.projection option;
      build_io : int;
    }
  | Rejected of { design : Design.t; projection : Guard.projection }
  | Rolled_back of {
      restored : Design.t;
      measured : float;
      expected : float;
      build_io : int;
    }

type window_report = {
  index : int;
  n_statements : int;
  design : Design.t;
  exec_logical_io : int;
  drift : float option;
  drifted : bool;
  action : action;
  reopt_s : float;
  reopt_whatif_calls : int;
}

type report = {
  regime : regime;
  windows : window_report array;
  statements : int;
  residual_statements : int;
  drift_events : int;
  reoptimizations : int;
  deployments : int;
  rejections : int;
  rollbacks : int;
  exec_logical_io : int;
  trans_logical_io : int;
  final_design : Design.t;
  reopt : Reopt.stats;
}

type probation = { prev_design : Design.t }

(* One closed window in the sliding history: the statements plus the
   cost-identity pass serve already paid for drift detection — the keys,
   whether every statement is on the served table (the keys are computed
   under that table's statistics), and the statistics fingerprint they
   were computed under.  Re-optimization reuses the keys only while the
   fingerprint still matches the live statistics. *)
type history_window = {
  h_statements : Ast.statement array;
  h_keys : string array;
  h_uniform : bool;
  h_fingerprint : string;
}

type t = {
  db : Database.t;
  cfg : config;
  reopt : Reopt.t;
  on_window : window_report -> unit;
  buf : Ast.statement array;
  buf_keys : string array;  (* feed-time cost keys; "" for deferred DML *)
  buf_gens : int array;  (* statistics generation each key was computed under; -1 = deferred *)
  parse_cache : Template.t option;  (* None when cfg.template_cache is off *)
  probe_cache : Cost_cache.t;  (* probation what-ifs; pass-through when plan_cache is off *)
  intern : (string, string) Hashtbl.t;  (* physical sharing of equal cost keys *)
  mutable window_started_s : float;  (* wall clock at first feed of the window; 0 = unset *)
  mutable fill : int;
  mutable window_index : int;
  mutable window_io : int;  (* measured exec I/O of the open window *)
  mutable history_windows : history_window list;  (* newest first *)
  mutable prev_profile : Drift.profile option;
  mutable probation : probation option;
  mutable reports : window_report list;  (* newest first *)
  mutable statements : int;
  mutable exec_io : int;
  mutable trans_io : int;
  mutable drift_events : int;
  mutable reoptimizations : int;
  mutable deployments : int;
  mutable rejections : int;
  mutable rollbacks : int;
}

let create ?(on_window = fun _ -> ()) db cfg =
  if cfg.window <= 0 then invalid_arg "Server.create: window must be positive";
  if cfg.history <= 0 then invalid_arg "Server.create: history must be positive";
  if cfg.horizon <= 0 then invalid_arg "Server.create: horizon must be positive";
  (match Database.schema db cfg.table with
  | Some _ -> ()
  | None -> invalid_arg (Printf.sprintf "Server.create: unknown table %s" cfg.table));
  {
    db;
    cfg;
    reopt = Reopt.create ~reuse:cfg.reopt_reuse db;
    on_window;
    buf = Array.make cfg.window (Ast.Select { projection = Ast.Star; table = cfg.table; where = [] });
    buf_keys = Array.make cfg.window "";
    buf_gens = Array.make cfg.window (-1);
    parse_cache = (if cfg.template_cache then Some (Template.create ()) else None);
    probe_cache =
      (if cfg.plan_cache && Cost_cache.default_enabled () then Cost_cache.create ()
       else Cost_cache.disabled);
    intern = Hashtbl.create 256;
    window_started_s = 0.0;
    fill = 0;
    window_index = 0;
    window_io = 0;
    history_windows = [];
    prev_profile = None;
    probation = None;
    reports = [];
    statements = 0;
    exec_io = 0;
    trans_io = 0;
    drift_events = 0;
    reoptimizations = 0;
    deployments = 0;
    rejections = 0;
    rollbacks = 0;
  }

let config t = t.cfg

let reopt_stats t = Reopt.stats t.reopt

let template_stats t = Option.map Template.stats t.parse_cache

(* Physical sharing of equal cost keys: repeated templates produce the
   same key string once per window otherwise.  Bounded; a reset only
   costs the sharing, never correctness. *)
let intern_capacity = 16_384

let intern t key =
  match Hashtbl.find_opt t.intern key with
  | Some shared -> shared
  | None ->
      if Hashtbl.length t.intern >= intern_capacity then Hashtbl.reset t.intern;
      Hashtbl.add t.intern key key;
      key

(* Feed-time half of the one-pass cost-identity pipeline: key a read-only
   statement under the served table's *current* statistics, tagged with
   the statistics generation so window close can prove the key is the one
   its own pass would compute.  A cached text reuses its tag while the
   generation matches — the common case, since only DML moves it.  (Lazy
   materialization inside [table_stats] never bumps the generation, so
   reading the generation first is safe.) *)
let feed_key t entry statement =
  let gen = Database.stats_generation t.db t.cfg.table in
  let compute () =
    let stats = Database.table_stats t.db t.cfg.table in
    intern t (Cost_key.statement stats statement)
  in
  match (entry : Template.entry option) with
  | Some entry -> (
      match entry.Template.cost_tag with
      | Some (g, key) when g = gen -> (key, gen)
      | _ ->
          let key = compute () in
          entry.Template.cost_tag <- Some (gen, key);
          (key, gen))
  | None -> (compute (), gen)

let statement_table statement =
  match statement with
  | Ast.Select { table; _ }
  | Ast.Select_agg { table; _ }
  | Ast.Insert { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Update { table; _ } ->
      table

(* The candidate structures of a re-optimization: derived from the recent
   statements, plus whatever the incumbent design already materialises —
   C0 must be a configuration of the space it is the seed of. *)
let candidate_structures t statements =
  let schema =
    match Database.schema t.db t.cfg.table with
    | Some schema -> schema
    | None -> assert false
  in
  let derived =
    Cddpd_core.Candidates.structures_from_statements schema
      ~composite_pairs:t.cfg.composite_pairs statements
  in
  let incumbent = Design.structures (Database.current_design t.db) in
  derived
  @ List.filter (fun s -> not (List.exists (Structure.equal s) derived)) incumbent

(* Cap on structures per configuration: the configured cap, raised if the
   incumbent design is already larger (it must remain representable). *)
let max_structures t =
  let incumbent = Design.cardinality (Database.current_design t.db) in
  Option.map (fun m -> max m incumbent) t.cfg.max_structures_per_config

let build_problem ?statement_keys t steps =
  let request =
    {
      (Advisor.default_request ~steps ~table:t.cfg.table) with
      Advisor.candidates = Some (candidate_structures t (Array.concat (Array.to_list steps)));
      max_structures_per_config = max_structures t;
      space_bound_bytes = t.cfg.space_bound_bytes;
      initial = Database.current_design t.db;
      count_initial_change = true;
      jobs = t.cfg.jobs;
    }
  in
  Reopt.build_problem ?statement_keys t.reopt request

let migrate_measured t target =
  let logical_before, _ = Database.io_counters t.db in
  Obs.Span.with_span "serve.deploy" (fun () -> Database.migrate_to t.db target);
  let logical_after, _ = Database.io_counters t.db in
  let build_io = logical_after - logical_before in
  t.trans_io <- t.trans_io + build_io;
  build_io

(* Rollback check: the window that just closed ran under a design deployed
   one window ago.  Compare its measured I/O against the what-if cost of
   the pre-deployment design on the same statements; a regression beyond
   [rollback_factor] restores the previous design. *)
let check_probation t ~stats ~window ~measured_io =
  match t.probation with
  | None -> None
  | Some { prev_design } ->
      t.probation <- None;
      let params = Database.params t.db in
      (* What-if the window's repeated templates through the probe cache:
         bit-identical memoization (see Cost_cache), pass-through when the
         fast path is off. *)
      let design_key = Cost_key.design prev_design in
      let expected =
        Array.fold_left
          (fun acc statement ->
            acc
            +. Cost_cache.statement_cost t.probe_cache params stats
                 ~design:prev_design ~design_key statement)
          0.0 window
      in
      let measured = float_of_int measured_io in
      if measured > t.cfg.rollback_factor *. expected then begin
        let build_io = migrate_measured t prev_design in
        t.rollbacks <- t.rollbacks + 1;
        Obs.Counter.incr m_rollbacks;
        Some (Rolled_back { restored = prev_design; measured; expected; build_io })
      end
      else None

(* One constrained re-optimization over the recent windows, seeded with
   the incumbent design as C0, guarded before deployment. *)
let reoptimize_continuous t ~fingerprint =
  let history = List.rev t.history_windows in
  let steps = Array.of_list (List.map (fun h -> h.h_statements) history) in
  (* The per-window cost-identity keys double as the build's statement
     keys, but only while they are provably current: every statement on
     the served table (whose statistics keyed them) and every window
     keyed under statistics that still fingerprint the same. *)
  let statement_keys =
    if
      List.for_all
        (fun h -> h.h_uniform && String.equal h.h_fingerprint fingerprint)
        history
    then Some (Array.concat (List.map (fun h -> h.h_keys) history))
    else None
  in
  let problem = build_problem ?statement_keys t steps in
  let incumbent = Database.current_design t.db in
  match
    Reopt.solve t.reopt problem ~method_name:t.cfg.method_name ~k:t.cfg.k
      ?jobs:t.cfg.jobs
  with
  | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) -> Held None
  | Ok solution -> (
      let target = solution.Solution.path.(Array.length solution.Solution.path - 1) in
      match
        Guard.assess problem ~target ~horizon:t.cfg.horizon
          ~budget:t.cfg.regret_budget
      with
      | Guard.No_change -> Held None
      | Guard.Accept projection ->
          Obs.Histogram.observe m_regret projection.Guard.regret;
          let design = Config_space.design problem.Problem.space target in
          let build_io = migrate_measured t design in
          t.deployments <- t.deployments + 1;
          Obs.Counter.incr m_deployments;
          t.probation <- Some { prev_design = incumbent };
          Deployed { design; projection = Some projection; build_io }
      | Guard.Reject projection ->
          Obs.Histogram.observe m_regret projection.Guard.regret;
          t.rejections <- t.rejections + 1;
          Obs.Counter.incr m_rejections;
          Rejected
            { design = Config_space.design problem.Problem.space target; projection })

(* The reactive baseline: the Online_tuner policy applied at window
   granularity — no constraint, no guard, no probation. *)
let reoptimize_reactive t window =
  let statement_keys = if window.h_uniform then Some window.h_keys else None in
  let problem = build_problem ?statement_keys t [| window.h_statements |] in
  let initial = problem.Problem.initial in
  let params =
    { Online_tuner.default_params with Online_tuner.horizon = t.cfg.horizon }
  in
  let decision =
    Online_tuner.decide ~params
      ~window_cost:(fun c -> problem.Problem.exec.(0).(c))
      ~trans_cost:(fun c -> problem.Problem.trans.(initial).(c))
      ~n_configs:(Problem.n_configs problem)
      ~current:initial ~window_len:1.0 ()
  in
  if decision = initial then Held None
  else begin
    let design = Config_space.design problem.Problem.space decision in
    let build_io = migrate_measured t design in
    t.deployments <- t.deployments + 1;
    Obs.Counter.incr m_deployments;
    Deployed { design; projection = None; build_io }
  end

let close_window t window fed_keys fed_gens =
  Obs.Span.with_span "serve.window" @@ fun () ->
  (if t.window_started_s > 0.0 then begin
     let elapsed = Obs.Span.now_s () -. t.window_started_s in
     if elapsed > 0.0 then
       Obs.Histogram.observe m_ingest_rate
         (float_of_int (Array.length window) /. elapsed);
     t.window_started_s <- 0.0
   end);
  let index = t.window_index in
  let served_design = Database.current_design t.db in
  let measured_io = t.window_io in
  let stats = Database.table_stats t.db t.cfg.table in
  let gen = Database.stats_generation t.db t.cfg.table in
  (* Close-time half of the one-pass cost-identity pipeline: a key fed
     under the current statistics generation *is* the key this pass would
     compute — the snapshot is physically the same object — so it rides
     through untouched.  Anything older (fed before mid-window DML) or
     deferred (DML itself) is keyed here, exactly as the single close-time
     pass always did.  The keys feed drift detection and, fingerprint
     permitting, the incremental problem build. *)
  let keys =
    Array.mapi
      (fun i s ->
        if fed_gens.(i) = gen then fed_keys.(i)
        else intern t (Cost_key.statement stats s))
      window
  in
  let profile = Drift.profile_of_clustering ~keys (Compress.cluster_keys keys) in
  let fingerprint = Table_stats.fingerprint stats in
  let closed =
    {
      h_statements = window;
      h_keys = keys;
      h_uniform =
        Array.for_all (fun s -> String.equal (statement_table s) t.cfg.table) window;
      h_fingerprint = fingerprint;
    }
  in
  let drift = Option.map (fun prev -> Drift.distance prev profile) t.prev_profile in
  let drifted =
    match drift with Some d -> d > t.cfg.drift_threshold | None -> false
  in
  if drifted then begin
    t.drift_events <- t.drift_events + 1;
    Obs.Counter.incr m_drift_events
  end;
  t.history_windows <- closed :: t.history_windows;
  (if List.length t.history_windows > t.cfg.history then
     t.history_windows <-
       List.filteri (fun i _ -> i < t.cfg.history) t.history_windows);
  let whatif_before = ref 0 in
  let reoptimize label f =
    t.reoptimizations <- t.reoptimizations + 1;
    Obs.Counter.incr m_reoptimizations;
    whatif_before := Obs.Counter.value m_cost_model_calls;
    let action, elapsed =
      Timer.time (fun () -> Obs.Span.with_span label (fun () -> f ()))
    in
    Obs.Histogram.observe m_reopt_s elapsed;
    (action, elapsed, Obs.Counter.value m_cost_model_calls - !whatif_before)
  in
  let action, reopt_s, reopt_whatif_calls =
    match check_probation t ~stats ~window ~measured_io with
    | Some rolled_back -> (rolled_back, 0.0, 0)
    | None -> (
        match t.cfg.regime with
        | Static -> (No_action, 0.0, 0)
        | Reactive -> reoptimize "serve.reoptimize" (fun () -> reoptimize_reactive t closed)
        | Continuous ->
            if index = 0 || drifted then
              reoptimize "serve.reoptimize" (fun () ->
                  reoptimize_continuous t ~fingerprint)
            else (No_action, 0.0, 0))
  in
  t.prev_profile <- Some profile;
  t.window_index <- index + 1;
  t.window_io <- 0;
  Obs.Counter.incr m_windows;
  Obs.Histogram.observe m_window_io (float_of_int measured_io);
  let report =
    {
      index;
      n_statements = Array.length window;
      design = served_design;
      exec_logical_io = measured_io;
      drift;
      drifted;
      action;
      reopt_s;
      reopt_whatif_calls;
    }
  in
  t.reports <- report :: t.reports;
  t.on_window report;
  report

let feed_statement t ?entry statement =
  if t.fill = 0 && Obs.Registry.enabled () then
    t.window_started_s <- Obs.Span.now_s ();
  let read_only = Ast.is_read_only statement in
  (* Key read-only statements now; defer DML to window close — keying DML
     here would force a histogram rebuild that its own execution is about
     to invalidate. *)
  let key, gen = if read_only then feed_key t entry statement else ("", -1) in
  (* The plan memo only understands keys computed under the statement's
     own table's statistics; serve keys everything under the served table
     (the drift convention), so only that table's reads pass one. *)
  let statement_key =
    if
      t.cfg.plan_cache && read_only
      && String.equal (statement_table statement) t.cfg.table
    then Some key
    else None
  in
  let skip_check =
    match entry with Some e -> e.Template.validated | None -> false
  in
  let result = Database.execute ?statement_key ~skip_check t.db statement in
  (match entry with Some e -> e.Template.validated <- true | None -> ());
  t.statements <- t.statements + 1;
  t.exec_io <- t.exec_io + result.Database.logical_io;
  t.window_io <- t.window_io + result.Database.logical_io;
  Obs.Counter.incr m_statements;
  t.buf.(t.fill) <- statement;
  t.buf_keys.(t.fill) <- key;
  t.buf_gens.(t.fill) <- gen;
  t.fill <- t.fill + 1;
  if t.fill = t.cfg.window then begin
    let window = Array.sub t.buf 0 t.fill in
    let keys = Array.sub t.buf_keys 0 t.fill in
    let gens = Array.sub t.buf_gens 0 t.fill in
    t.fill <- 0;
    Some (close_window t window keys gens)
  end
  else None

let feed t statement = feed_statement t statement

let feed_sql t sql =
  match t.parse_cache with
  | Some cache -> (
      match Parser.parse_cached cache sql with
      | Ok entry -> Ok (feed_statement t ~entry entry.Template.statement)
      | Error e -> Error e)
  | None -> (
      match Parser.parse sql with
      | Ok statement -> Ok (feed_statement t statement)
      | Error e -> Error e)

let finish t =
  {
    regime = t.cfg.regime;
    windows = Array.of_list (List.rev t.reports);
    statements = t.statements;
    residual_statements = t.fill;
    drift_events = t.drift_events;
    reoptimizations = t.reoptimizations;
    deployments = t.deployments;
    rejections = t.rejections;
    rollbacks = t.rollbacks;
    exec_logical_io = t.exec_io;
    trans_logical_io = t.trans_io;
    final_design = Database.current_design t.db;
    reopt = Reopt.stats t.reopt;
  }

let run ?on_window db cfg trace =
  let t = create ?on_window db cfg in
  Array.iter (fun statement -> ignore (feed t statement)) trace;
  finish t
