module Problem = Cddpd_core.Problem

type projection = {
  target : int;
  baseline : float;
  projected : float;
  regret : float;
}

type verdict = No_change | Accept of projection | Reject of projection

let assess problem ~target ~horizon ~budget =
  if horizon < 1 then invalid_arg "Guard.assess: horizon must be >= 1";
  if target < 0 || target >= Problem.n_configs problem then
    invalid_arg "Guard.assess: target out of range";
  let initial = problem.Problem.initial in
  if target = initial then No_change
  else begin
    let last = Problem.n_steps problem - 1 in
    let h = float_of_int horizon in
    let exec = problem.Problem.exec and trans = problem.Problem.trans in
    let baseline = h *. exec.(last).(initial) in
    let projected = trans.(initial).(target) +. (h *. exec.(last).(target)) in
    let projection = { target; baseline; projected; regret = projected -. baseline } in
    if projection.regret <= budget then Accept projection else Reject projection
  end
