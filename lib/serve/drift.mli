(** Workload-drift detection over cost-identity histograms.

    The serve loop needs to know when the live workload has changed
    *in a way that matters to the advisor*.  Comparing raw SQL text is
    too fine (the paper's workloads draw predicate constants at random,
    so almost every statement is textually unique) and comparing only
    predicate columns ({!Cddpd_workload.Segmenter}) is too coarse once
    selectivities shift.  This module buckets statements by their
    {!Cddpd_engine.Cost_key} cost identity — exactly the equivalence the
    what-if memo uses: two statements share a bucket iff the cost model
    treats them identically under every design — and compares adjacent
    windows by the L1 distance of their bucket-frequency histograms.

    Distances live in [\[0, 2\]]: 0 = identical histograms, 2 = disjoint
    support (a complete workload change). *)

type profile = (string * float) list
(** Relative frequency per cost-identity key, keyed ascending.  Frequencies
    sum to 1 for a non-empty window; the empty window has the empty
    profile. *)

val profile :
  stats:Cddpd_engine.Table_stats.t -> Cddpd_sql.Ast.statement array -> profile
(** Histogram one window of statements under the given table statistics
    (the statistics feed the selectivity component of the key, so a data
    shift that changes selectivities also registers as drift).
    Implemented as one {!Cddpd_workload.Compress} clustering pass over
    the window's keys — the same pass serve ingest shares with problem
    building via {!profile_of_clustering}. *)

val profile_of_clustering :
  keys:string array -> Cddpd_workload.Compress.t -> profile
(** The profile of a window whose cost-identity keys and clustering the
    caller already computed ([Compress.cluster_keys keys]).  Equal to
    [profile] on the same window: serve computes each window's keys once
    and feeds both drift detection and the incremental problem build
    from that single cost-identity pass. *)

val distance : profile -> profile -> float
(** L1 distance between two profiles, in [\[0, 2\]]. *)

val default_threshold : float
(** 0.5 — the same order as {!Cddpd_workload.Segmenter}'s change-point
    threshold: half the probability mass moved buckets. *)

val drifted : ?threshold:float -> profile -> profile -> bool
(** [distance a b > threshold].  A non-positive [threshold] therefore
    declares drift on any difference at all — the knob that turns the
    serve loop's drift-gated re-optimization into an every-window one. *)
