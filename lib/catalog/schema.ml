module Tuple = Cddpd_storage.Tuple

type col_type = Int_type | Text_type

type column = { name : string; ty : col_type }

type table = { name : string; columns : column list }

let table name columns =
  (match columns with
  | [] -> invalid_arg "Schema.table: no columns"
  | _ :: _ -> ());
  let names = List.map fst columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Schema.table: duplicate column names";
  { name; columns = List.map (fun (name, ty) -> { name; ty }) columns }

let column_index t name =
  let rec go i columns =
    match columns with
    | [] -> None
    | (c : column) :: rest ->
        if String.equal c.name name then Some i else go (i + 1) rest
  in
  go 0 t.columns

let column_index_exn t name =
  match column_index t name with Some i -> i | None -> raise Not_found

let column_type t name =
  List.find_map
    (fun (c : column) -> if String.equal c.name name then Some c.ty else None)
    t.columns

let mem_column t name = column_index t name <> None

let arity t = List.length t.columns

let value_matches ty v =
  match (ty, v) with
  | Int_type, Tuple.Int _ -> true
  | Text_type, Tuple.Text _ -> true
  | Int_type, Tuple.Text _ | Text_type, Tuple.Int _ -> false

let validate_tuple t tuple =
  if Array.length tuple <> arity t then
    Error
      (Printf.sprintf "tuple has %d fields, table %s has %d columns"
         (Array.length tuple) t.name (arity t))
  else
    let rec go i columns =
      match columns with
      | [] -> Ok ()
      | (c : column) :: rest ->
          if value_matches c.ty tuple.(i) then go (i + 1) rest
          else Error (Printf.sprintf "column %s: type mismatch" c.name)
    in
    go 0 t.columns

let pp_col_type ppf ty =
  Format.pp_print_string ppf
    (match ty with Int_type -> "int" | Text_type -> "text")

let pp_table ppf t =
  Format.fprintf ppf "%s(%a)" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (c : column) -> Format.fprintf ppf "%s %a" c.name pp_col_type c.ty))
    t.columns
