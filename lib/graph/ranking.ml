module Pqueue = Cddpd_util.Pqueue
module Obs = Cddpd_obs

let m_nodes_expanded = Obs.Registry.counter "advisor.ranking.nodes_expanded"
let m_paths_emitted = Obs.Registry.counter "advisor.ranking.paths_emitted"
let m_paths_pruned = Obs.Registry.counter "advisor.ranking.paths_pruned"

(* Exact cost-to-go: h.(s).(j) = cheapest completion from node j of stage s
   (excluding node j's own cost, including the sink edge). *)
let cost_to_go (g : Staged_dag.t) =
  let n = g.Staged_dag.n_nodes in
  let stages = g.Staged_dag.n_stages in
  let h = Array.make_matrix stages n 0.0 in
  for j = 0 to n - 1 do
    h.(stages - 1).(j) <- g.Staged_dag.sink_cost j
  done;
  for s = stages - 2 downto 0 do
    for j = 0 to n - 1 do
      let best = ref infinity in
      for j' = 0 to n - 1 do
        let candidate =
          g.Staged_dag.edge_cost s j j' +. g.Staged_dag.node_cost (s + 1) j'
          +. h.(s + 1).(j')
        in
        if candidate < !best then best := candidate
      done;
      h.(s).(j) <- !best
    done
  done;
  h

type partial = {
  stage : int; (* stage of the last chosen node *)
  node : int;
  g_cost : float; (* actual cost up to and including (stage, node) *)
  rev_path : int list;
}

let enumerate (g : Staged_dag.t) =
  let n = g.Staged_dag.n_nodes in
  let stages = g.Staged_dag.n_stages in
  let h = cost_to_go g in
  let initial_queue = ref Pqueue.empty in
  for j = 0 to n - 1 do
    let g_cost = g.Staged_dag.source_cost j +. g.Staged_dag.node_cost 0 j in
    initial_queue :=
      Pqueue.insert !initial_queue
        (g_cost +. h.(0).(j))
        { stage = 0; node = j; g_cost; rev_path = [ j ] }
  done;
  (* Best-first expansion.  With an exact heuristic, the f-value of a popped
     state equals the true cost of the best completion of its prefix, so
     completed paths pop in nondecreasing cost order. *)
  let rec next queue () =
    match Pqueue.pop_min queue with
    | None -> Seq.Nil
    | Some (f, partial, queue) ->
        Obs.Counter.incr m_nodes_expanded;
        if partial.stage = stages - 1 then begin
          Obs.Counter.incr m_paths_emitted;
          let path = Array.of_list (List.rev partial.rev_path) in
          Seq.Cons ((f, path), next queue)
        end
        else begin
          let queue = ref queue in
          for j' = 0 to n - 1 do
            let g_cost =
              partial.g_cost
              +. g.Staged_dag.edge_cost partial.stage partial.node j'
              +. g.Staged_dag.node_cost (partial.stage + 1) j'
            in
            queue :=
              Pqueue.insert !queue
                (g_cost +. h.(partial.stage + 1).(j'))
                {
                  stage = partial.stage + 1;
                  node = j';
                  g_cost;
                  rev_path = j' :: partial.rev_path;
                }
          done;
          next !queue ()
        end
  in
  next !initial_queue

let solve_constrained g ~k ~initial ?(max_paths = 1_000_000) () =
  Obs.Span.with_span "advisor.ranking" (fun () ->
      let rec scan seq rank =
        if rank > max_paths then `Gave_up max_paths
        else
          match seq () with
          | Seq.Nil -> `Gave_up (rank - 1)
          | Seq.Cons ((cost, path), rest) ->
              if Staged_dag.path_changes g ~initial path <= k then
                `Found (cost, path, rank)
              else begin
                Obs.Counter.incr m_paths_pruned;
                scan rest (rank + 1)
              end
      in
      scan (enumerate g) 1)
