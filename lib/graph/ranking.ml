module Pqueue = Cddpd_util.Pqueue
module Obs = Cddpd_obs

let m_nodes_expanded = Obs.Registry.counter "advisor.ranking.nodes_expanded"
let m_paths_emitted = Obs.Registry.counter "advisor.ranking.paths_emitted"
let m_paths_pruned = Obs.Registry.counter "advisor.ranking.paths_pruned"
let m_partials_pruned = Obs.Registry.counter "advisor.ranking.partials_pruned"
let m_queue_peak = Obs.Registry.histogram "advisor.ranking.queue_peak"

type partial = {
  stage : int; (* stage of the last chosen node *)
  node : int;
  g_cost : float; (* actual cost up to and including (stage, node) *)
  rev_path : int list;
}

let enumerate (g : Staged_dag.t) =
  let n = g.Staged_dag.n_nodes in
  let stages = g.Staged_dag.n_stages in
  let h = Staged_dag.cost_to_go g in
  let initial_queue = ref Pqueue.empty in
  for j = 0 to n - 1 do
    let g_cost = g.Staged_dag.source_cost j +. g.Staged_dag.node_cost 0 j in
    initial_queue :=
      Pqueue.insert !initial_queue
        (g_cost +. h.(j))
        { stage = 0; node = j; g_cost; rev_path = [ j ] }
  done;
  (* Best-first expansion.  With an exact heuristic, the f-value of a popped
     state equals the true cost of the best completion of its prefix, so
     completed paths pop in nondecreasing cost order. *)
  let rec next queue () =
    match Pqueue.pop_min queue with
    | None -> Seq.Nil
    | Some (f, partial, queue) ->
        Obs.Counter.incr m_nodes_expanded;
        if partial.stage = stages - 1 then begin
          Obs.Counter.incr m_paths_emitted;
          let path = Array.of_list (List.rev partial.rev_path) in
          Seq.Cons ((f, path), next queue)
        end
        else begin
          let queue = ref queue in
          let hb = (partial.stage + 1) * n in
          for j' = 0 to n - 1 do
            let g_cost =
              partial.g_cost
              +. g.Staged_dag.edge_cost partial.stage partial.node j'
              +. g.Staged_dag.node_cost (partial.stage + 1) j'
            in
            queue :=
              Pqueue.insert !queue
                (g_cost +. h.(hb + j'))
                {
                  stage = partial.stage + 1;
                  node = j';
                  g_cost;
                  rev_path = j' :: partial.rev_path;
                }
          done;
          next !queue ()
        end
  in
  next !initial_queue

type give_up_reason = Space_exhausted | Path_budget | Queue_budget

let reason_to_string reason =
  match reason with
  | Space_exhausted -> "space exhausted"
  | Path_budget -> "path budget hit"
  | Queue_budget -> "queue budget hit"

type gave_up = {
  examined : int;
  queue_peak : int;
  reason : give_up_reason;
}

(* The budgeted search keeps its frontier in a growable arena instead of
   per-partial path lists: one slot per inserted partial holding its node,
   stage, accumulated cost and parent slot, with the priority queue
   carrying arena ids only.  Paths are rebuilt by chasing parents on
   emission.  This caps the per-insertion footprint at a few words,
   detaches memory from path length, and makes the queue budget exact. *)
type arena = {
  mutable nodes : int array;
  mutable stages : int array;
  mutable parents : int array;
  mutable g_costs : float array;
  mutable len : int;
}

let arena_create () =
  {
    nodes = Array.make 1024 0;
    stages = Array.make 1024 0;
    parents = Array.make 1024 (-1);
    g_costs = Array.make 1024 0.0;
    len = 0;
  }

let arena_push a ~node ~stage ~parent ~g_cost =
  if a.len = Array.length a.nodes then begin
    let grow ar fill =
      let bigger = Array.make (2 * Array.length ar) fill in
      Array.blit ar 0 bigger 0 a.len;
      bigger
    in
    a.nodes <- grow a.nodes 0;
    a.stages <- grow a.stages 0;
    a.parents <- grow a.parents (-1);
    a.g_costs <- grow a.g_costs 0.0
  end;
  let id = a.len in
  a.nodes.(id) <- node;
  a.stages.(id) <- stage;
  a.parents.(id) <- parent;
  a.g_costs.(id) <- g_cost;
  a.len <- id + 1;
  id

let arena_path a id ~stages =
  let path = Array.make stages 0 in
  let rec go id s =
    path.(s) <- a.nodes.(id);
    if s > 0 then go a.parents.(id) (s - 1)
  in
  go id (stages - 1);
  path

(* Mutable binary min-heap over (f-value, arena id), ties broken by arena
   id — i.e. insertion order.  The stable tie-break is load-bearing for
   the bound-pruning guarantee: arena ids stay in the same relative order
   whether or not over-bound partials were discarded, so the pruned and
   unpruned searches pop identical state sequences and accept the same
   path at the same rank (a structure-dependent tie-break like the
   persistent leftist heap's would not promise that). *)
type heap = {
  mutable prios : float array;
  mutable heap_ids : int array;
  mutable size : int;
}

let heap_create () = { prios = Array.make 1024 0.0; heap_ids = Array.make 1024 0; size = 0 }

let heap_less h i j =
  h.prios.(i) < h.prios.(j)
  || (Float.equal h.prios.(i) h.prios.(j) && h.heap_ids.(i) < h.heap_ids.(j))

let heap_swap h i j =
  let p = h.prios.(i) and id = h.heap_ids.(i) in
  h.prios.(i) <- h.prios.(j);
  h.heap_ids.(i) <- h.heap_ids.(j);
  h.prios.(j) <- p;
  h.heap_ids.(j) <- id

let heap_push h prio id =
  if h.size = Array.length h.prios then begin
    let grow ar fill =
      let bigger = Array.make (2 * Array.length ar) fill in
      Array.blit ar 0 bigger 0 h.size;
      bigger
    in
    h.prios <- grow h.prios 0.0;
    h.heap_ids <- grow h.heap_ids 0
  end;
  h.prios.(h.size) <- prio;
  h.heap_ids.(h.size) <- id;
  h.size <- h.size + 1;
  let i = ref (h.size - 1) in
  while !i > 0 && heap_less h !i ((!i - 1) / 2) do
    heap_swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let heap_pop h =
  if h.size = 0 then None
  else begin
    let prio = h.prios.(0) and id = h.heap_ids.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.prios.(0) <- h.prios.(h.size);
      h.heap_ids.(0) <- h.heap_ids.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && heap_less h l !smallest then smallest := l;
        if r < h.size && heap_less h r !smallest then smallest := r;
        if !smallest = !i then continue := false
        else begin
          heap_swap h !i !smallest;
          i := !smallest
        end
      done
    end;
    Some (prio, id)
  end

let solve_constrained g ~k ~initial ?upper_bound ?(max_paths = 1_000_000)
    ?(max_queue = max_int) () =
  Obs.Span.with_span "advisor.ranking" (fun () ->
      let n = g.Staged_dag.n_nodes in
      let stages = g.Staged_dag.n_stages in
      let h = Staged_dag.cost_to_go g in
      (* Slackened like the k-aware pruner: a bound that is the cost of a
         feasible path can never cut the constrained optimum, float
         rounding included. *)
      let ub =
        match upper_bound with
        | None -> infinity
        | Some ub -> ub +. (Float.abs ub *. 1e-9)
      in
      let arena = arena_create () in
      let queue = heap_create () in
      let queue_peak = ref 0 in
      let partials_pruned = ref 0 in
      let over_budget = ref false in
      let push ~node ~stage ~parent ~g_cost f =
        if f > ub then incr partials_pruned
        else if queue.size >= max_queue then over_budget := true
        else begin
          let id = arena_push arena ~node ~stage ~parent ~g_cost in
          heap_push queue f id;
          if queue.size > !queue_peak then queue_peak := queue.size
        end
      in
      for j = 0 to n - 1 do
        let g_cost = g.Staged_dag.source_cost j +. g.Staged_dag.node_cost 0 j in
        push ~node:j ~stage:0 ~parent:(-1) ~g_cost (g_cost +. h.(j))
      done;
      let rec scan rank =
        if !over_budget then `Stop (Queue_budget, rank - 1)
        else
          match heap_pop queue with
          | None -> `Stop (Space_exhausted, rank - 1)
          | Some (f, id) ->
              Obs.Counter.incr m_nodes_expanded;
              let stage = arena.stages.(id) in
              if stage = stages - 1 then begin
                Obs.Counter.incr m_paths_emitted;
                let path = arena_path arena id ~stages in
                if Staged_dag.path_changes g ~initial path <= k then
                  `Done (f, path, rank)
                else if rank >= max_paths then `Stop (Path_budget, rank)
                else begin
                  Obs.Counter.incr m_paths_pruned;
                  scan (rank + 1)
                end
              end
              else begin
                let g_cost = arena.g_costs.(id) in
                let node = arena.nodes.(id) in
                let hb = (stage + 1) * n in
                for j' = 0 to n - 1 do
                  let g_cost' =
                    g_cost
                    +. g.Staged_dag.edge_cost stage node j'
                    +. g.Staged_dag.node_cost (stage + 1) j'
                  in
                  push ~node:j' ~stage:(stage + 1) ~parent:id ~g_cost:g_cost'
                    (g_cost' +. h.(hb + j'))
                done;
                scan rank
              end
      in
      let outcome = scan 1 in
      if Obs.Registry.enabled () then begin
        Obs.Counter.add m_partials_pruned !partials_pruned;
        Obs.Histogram.observe m_queue_peak (float_of_int !queue_peak)
      end;
      match outcome with
      | `Done (cost, path, rank) -> `Found (cost, path, rank)
      | `Stop (reason, examined) ->
          `Gave_up { examined; queue_peak = !queue_peak; reason })
