(** Staged DAGs — the "sequence graphs" of Agrawal, Chu and Narasayya.

    A staged DAG has [n_stages] columns of [n_nodes] nodes each, a source
    before stage 0 and a sink after the last stage.  Every node of stage
    [s] has an edge to every node of stage [s+1].  Node and edge costs are
    supplied as functions, so graphs are never materialised: a sequence
    graph for [n] statements over [2^m] configurations is represented in
    O(1) space.

    In the physical-design instantiation, a node [(s, j)] is "execute
    statement [s] under configuration [j]" with node cost [EXEC(S_s,C_j)],
    and edge costs are [TRANS(C_i, C_j)]. *)

type dense = private {
  exec : float array;  (** node costs, stage-major: [stage * n_nodes + node] *)
  trans : float array;  (** edge costs, [src * n_nodes + dst] (stage-invariant) *)
  source : float array;  (** source-edge cost per node *)
  sink : float array;  (** sink-edge cost per node *)
}
(** Materialized cost matrices, flat so the DP inner loops index arrays
    instead of calling cost closures. *)

type t = private {
  n_stages : int;
  n_nodes : int;
  node_cost : int -> int -> float;  (** [node_cost stage node] *)
  edge_cost : int -> int -> int -> float;
      (** [edge_cost stage src dst]: edge from [(stage, src)] to
          [(stage+1, dst)]; [stage] ranges over [0 .. n_stages-2] *)
  source_cost : int -> float;  (** source to [(0, node)] *)
  sink_cost : int -> float;  (** [(n_stages-1, node)] to sink *)
  dense : dense option;
      (** Present iff the graph was built by {!of_matrices}; the closures
          above then read these arrays, so the two representations agree
          bit-for-bit and solvers may use whichever is faster. *)
}

val make :
  n_stages:int ->
  n_nodes:int ->
  node_cost:(int -> int -> float) ->
  edge_cost:(int -> int -> int -> float) ->
  ?source_cost:(int -> float) ->
  ?sink_cost:(int -> float) ->
  unit ->
  t
(** Build a graph description.  [source_cost] and [sink_cost] default to
    zero.  Raises [Invalid_argument] if [n_stages] or [n_nodes] is not
    positive. *)

val of_matrices :
  exec:float array array ->
  trans:float array array ->
  ?source:float array ->
  ?sink:float array ->
  unit ->
  t
(** Build a graph from materialized matrices: [exec.(s).(j)] is the node
    cost of [(s, j)], [trans.(i).(j)] the (stage-invariant) edge cost
    from node [i] to node [j], [source]/[sink] the per-node source and
    sink edge costs (default zero).  The matrices are copied into the
    {!dense} flat representation, which {!shortest_path} and
    {!Kaware.solve} use as a closure-free fast path.  Raises
    [Invalid_argument] on empty or ragged input. *)

val path_cost : t -> int array -> float
(** Total cost of a source-to-sink path visiting the given node per stage.
    Raises [Invalid_argument] on a wrong-length path. *)

val path_changes : t -> initial:int option -> int array -> int
(** Number of stage boundaries where the node changes; with [initial =
    Some j], a stage-0 node different from [j] also counts. *)

val shortest_path : t -> float * int array
(** The minimum-cost source-to-sink path, by dynamic programming over
    stages in O(n_stages * n_nodes^2) time. *)

val cost_to_go : t -> float array
(** The exact unconstrained cost-to-go, flat and stage-major:
    [(cost_to_go t).(s * n_nodes + j)] is the cheapest completion from
    node [j] of stage [s] to the sink — excluding node [j]'s own cost,
    including the sink edge.  Computed by one backward O(n_stages *
    n_nodes^2) pass (dense fast path when {!dense} is present, bit-equal
    to the closure path).  This is the admissible heuristic shared by
    {!Ranking.enumerate} and the {!Kaware.solve} bound pruner: it never
    overestimates the completion cost of any path, constrained or not. *)
