(** k-aware sequence graphs (Section 3 of the paper).

    The staged DAG is replicated into [k+1] layers; a path occupies layer
    [l] after [l] node changes, so paths through the layered graph are
    exactly the paths of the base graph with at most [k] changes.  The
    layered graph is never materialised: the dynamic program below indexes
    states by (stage, layer, node), giving the paper's O(k n 2^2m) bound
    for [2^m] configurations per stage.

    {2 Layer semantics}

    Layer [l] means "[l] design changes consumed so far".  Staying on the
    same node across a stage boundary keeps the layer; switching nodes
    moves diagonally from layer [l] to [l+1] — so edges never descend, and
    a state [(s, l, j)] encodes the cheapest way to execute the first
    [s+1] steps ending in configuration [j] with exactly [l] changes.
    With [initial = Some j0], starting anywhere other than [j0] enters at
    layer 1 instead of 0 (the first deviation from the deployed design is
    itself a change).  The answer minimises over {e all} layers at the
    sink, which is what makes the constraint "at most [k]", not
    "exactly [k]".

    {2 Scaling}

    Two mechanisms let the DP handle large design spaces (see
    docs/PERFORMANCE.md):

    - {b Branch-and-bound pruning} ([upper_bound]): given the cost of any
      known feasible ≤ [k]-changes path (e.g. the {!Cddpd_core.Merging}
      heuristic's), every DP state whose distance plus exact unconstrained
      cost-to-go ({!Staged_dag.cost_to_go}) exceeds the bound is skipped.
      The heuristic is admissible, so the surviving DP values, the optimum
      and the reconstructed path are identical to the unpruned run
      (property-tested; the bound carries a 1e-9 relative slack so float
      rounding can never cut the optimum).  An [upper_bound] below the
      true constrained optimum voids that guarantee — always derive it
      from a feasible path of the same instance.
    - {b Parallel relaxation} ([jobs]): on dense graphs the destination
      nodes of each stage are partitioned across OCaml domains
      ({!Cddpd_util.Parallel}); each domain owns a disjoint slice of the
      next-distance and predecessor arrays and sees candidates in the same
      order as the sequential loop, so the result is bit-identical for
      every domain count.  Explicit [jobs] is honoured as given; by
      default the DP stays sequential below a per-stage work threshold
      (the paper's 7-config space never spawns) and otherwise uses the
      {!Cddpd_util.Parallel.default_jobs} process default.

    {2 Observability}

    Each solve runs inside an [advisor.kaware] trace span and reports
    [advisor.kaware.nodes_expanded] (source states relaxed),
    [advisor.kaware.edges_relaxed] (relaxation attempts),
    [advisor.kaware.states_pruned] (reachable states cut by the bound) and
    [advisor.kaware.domains_used] (domains per solve).  The accounting
    pass runs only when instrumentation is enabled — the relaxation loops
    themselves carry no counters. *)

val solve :
  ?jobs:int ->
  ?upper_bound:float ->
  Staged_dag.t ->
  k:int ->
  initial:int option ->
  (float * int array) option
(** [solve g ~k ~initial] is the minimum-cost source-to-sink path with at
    most [k] node changes (counted as in {!Staged_dag.path_changes}:
    [initial = Some j] makes a stage-0 node other than [j] consume a
    change).  [None] if no such path exists (possible only when [k = 0]
    conflicts with infinite costs, or [k < 0]).  Raises
    [Invalid_argument] if [initial] is out of range.

    [upper_bound] enables branch-and-bound pruning and must be the cost
    of a feasible ≤ [k]-changes path of [g]; [jobs] forces the domain
    count for the dense parallel relaxation (closure-backed graphs always
    run sequentially).  Neither changes the returned [(cost, path)]. *)
