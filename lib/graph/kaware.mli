(** k-aware sequence graphs (Section 3 of the paper).

    The staged DAG is replicated into [k+1] layers; a path occupies layer
    [l] after [l] node changes, so paths through the layered graph are
    exactly the paths of the base graph with at most [k] changes.  The
    layered graph is never materialised: the dynamic program below indexes
    states by (stage, layer, node), giving the paper's O(k n 2^2m) bound
    for [2^m] configurations per stage.

    {2 Layer semantics}

    Layer [l] means "[l] design changes consumed so far".  Staying on the
    same node across a stage boundary keeps the layer; switching nodes
    moves diagonally from layer [l] to [l+1] — so edges never descend, and
    a state [(s, l, j)] encodes the cheapest way to execute the first
    [s+1] steps ending in configuration [j] with exactly [l] changes.
    With [initial = Some j0], starting anywhere other than [j0] enters at
    layer 1 instead of 0 (the first deviation from the deployed design is
    itself a change).  The answer minimises over {e all} layers at the
    sink, which is what makes the constraint "at most [k]", not
    "exactly [k]".

    {2 Observability}

    Each solve runs inside an [advisor.kaware] trace span and, because the
    DP is dense (every state relaxed exactly once, every layered edge
    attempted exactly once), reports its work to the
    [advisor.kaware.nodes_expanded] and [advisor.kaware.edges_relaxed]
    counters in closed form — the hot loop itself carries no
    instrumentation. *)

val solve :
  Staged_dag.t -> k:int -> initial:int option -> (float * int array) option
(** [solve g ~k ~initial] is the minimum-cost source-to-sink path with at
    most [k] node changes (counted as in {!Staged_dag.path_changes}:
    [initial = Some j] makes a stage-0 node other than [j] consume a
    change).  [None] if no such path exists (possible only when [k = 0]
    conflicts with infinite costs, or [k < 0]).  Raises
    [Invalid_argument] if [initial] is out of range. *)
