module Obs = Cddpd_obs

let m_nodes_expanded = Obs.Registry.counter "advisor.kaware.nodes_expanded"
let m_edges_relaxed = Obs.Registry.counter "advisor.kaware.edges_relaxed"

(* The DP loops below are dense — every (stage, layer, node) state is
   relaxed exactly once and every layered edge gets one relaxation attempt
   — so the observability counts are computed in closed form rather than
   incremented inside the O(stages * k * n^2) inner loop.  This keeps the
   hot path untouched whether or not instrumentation is enabled. *)
let record_work ~stages ~layers ~n =
  if Obs.Registry.enabled () then begin
    Obs.Counter.add m_nodes_expanded (n + ((stages - 1) * layers * n));
    Obs.Counter.add m_edges_relaxed
      ((stages - 1) * ((n * layers) + (n * (n - 1) * (layers - 1))))
  end

(* One stage of the layered relaxation.  The closure-backed and
   dense-backed variants perform the same float operations in the same
   order, so which one runs never changes the answer — only how fast the
   O(k n^2) inner loop goes (the dense variant reads flat arrays instead
   of calling two closures per edge). *)

let relax_closures (g : Staged_dag.t) ~n ~layers dist next pred s =
  for j = 0 to n - 1 do
    let node = g.Staged_dag.node_cost s j in
    for i = 0 to n - 1 do
      let edge = g.Staged_dag.edge_cost (s - 1) i j in
      let delta = if i = j then 0 else 1 in
      for l = 0 to layers - 1 - delta do
        if dist.(l).(i) < infinity then begin
          let candidate = dist.(l).(i) +. edge +. node in
          let l' = l + delta in
          if candidate < next.(l').(j) then begin
            next.(l').(j) <- candidate;
            pred.(s).(l').(j) <- (l, i)
          end
        end
      done
    done
  done

let relax_dense (d : Staged_dag.dense) ~n ~layers dist next pred s =
  let exec = d.Staged_dag.exec and trans = d.Staged_dag.trans in
  let stage_base = s * n in
  for j = 0 to n - 1 do
    let node = exec.(stage_base + j) in
    for i = 0 to n - 1 do
      let edge = trans.((i * n) + j) in
      let delta = if i = j then 0 else 1 in
      for l = 0 to layers - 1 - delta do
        if dist.(l).(i) < infinity then begin
          let candidate = dist.(l).(i) +. edge +. node in
          let l' = l + delta in
          if candidate < next.(l').(j) then begin
            next.(l').(j) <- candidate;
            pred.(s).(l').(j) <- (l, i)
          end
        end
      done
    done
  done

let solve_dp (g : Staged_dag.t) ~k ~initial =
  let n = g.Staged_dag.n_nodes in
  let stages = g.Staged_dag.n_stages in
  (match initial with
  | Some j when j < 0 || j >= n -> invalid_arg "Kaware.solve: initial out of range"
  | Some _ | None -> ());
  if k < 0 then None
  else begin
    let layers = k + 1 in
    (* dist.(l).(j): best cost reaching node j of the current stage having
       used l changes; pred.(s).(l).(j) = (prev_layer, prev_node). *)
    let dist = Array.make_matrix layers n infinity in
    let pred = Array.init stages (fun _ -> Array.make_matrix layers n (-1, -1)) in
    for j = 0 to n - 1 do
      let l =
        match initial with
        | Some init when j <> init -> 1
        | Some _ | None -> 0
      in
      if l < layers then begin
        let cost = g.Staged_dag.source_cost j +. g.Staged_dag.node_cost 0 j in
        if cost < dist.(l).(j) then dist.(l).(j) <- cost
      end
    done;
    let next = Array.make_matrix layers n infinity in
    for s = 1 to stages - 1 do
      for l = 0 to layers - 1 do
        Array.fill next.(l) 0 n infinity
      done;
      (match g.Staged_dag.dense with
      | Some d -> relax_dense d ~n ~layers dist next pred s
      | None -> relax_closures g ~n ~layers dist next pred s);
      for l = 0 to layers - 1 do
        Array.blit next.(l) 0 dist.(l) 0 n
      done
    done;
    record_work ~stages ~layers ~n;
    let best = ref None in
    for l = 0 to layers - 1 do
      for j = 0 to n - 1 do
        if dist.(l).(j) < infinity then begin
          let total = dist.(l).(j) +. g.Staged_dag.sink_cost j in
          match !best with
          | Some (cost, _, _) when cost <= total -> ()
          | Some _ | None -> best := Some (total, l, j)
        end
      done
    done;
    match !best with
    | None -> None
    | Some (cost, l, j) ->
        let path = Array.make stages 0 in
        let rec rebuild s l j =
          path.(s) <- j;
          if s > 0 then begin
            let prev_l, prev_j = pred.(s).(l).(j) in
            rebuild (s - 1) prev_l prev_j
          end
        in
        rebuild (stages - 1) l j;
        Some (cost, path)
  end

let solve g ~k ~initial =
  Obs.Span.with_span "advisor.kaware" (fun () -> solve_dp g ~k ~initial)
