module Obs = Cddpd_obs
module Parallel = Cddpd_util.Parallel

let m_nodes_expanded = Obs.Registry.counter "advisor.kaware.nodes_expanded"
let m_edges_relaxed = Obs.Registry.counter "advisor.kaware.edges_relaxed"
let m_states_pruned = Obs.Registry.counter "advisor.kaware.states_pruned"
let m_domains_used = Obs.Registry.counter "advisor.kaware.domains_used"

(* The layered DP state space is flat: [dist.(l * n + j)] is the best cost
   reaching node [j] of the current stage having used [l] changes, and
   [pred.(((s * layers) + l) * n + j)] packs the predecessor state as
   [prev_layer * n + prev_node] (-1 when unset).  Packing the predecessor
   into an int kills the boxed-tuple allocation the previous
   representation paid on every improvement — O(stages * layers * n)
   tuples on a dense instance.

   Relaxation iterates sources in (node [i] ascending, layer [l] inner)
   order and, per source, destinations [j] ascending.  For any fixed
   destination state, candidates therefore arrive in ascending source-node
   order — the same order as the historical j-outer/i-inner loop nest, so
   tie-breaking (first strict improvement wins) and hence the returned
   path are unchanged.  Every variant below (closure/dense, sequential/
   parallel slice, pruned/unpruned) preserves that order, which is what
   makes them all bit-identical.

   Bound pruning: with an upper bound [ub] (the cost of any known feasible
   ≤ k-changes path) and the exact unconstrained cost-to-go [h], a source
   state with [dist +. h > ub] cannot lie on any schedule that beats the
   bound — in particular not on the constrained optimum — so its outgoing
   relaxations are skipped.  Pruned sources never tie a surviving state's
   minimum (their candidates' f-values stay above [ub]), so the surviving
   DP values and predecessors are exactly those of the unpruned run. *)

(* Relax one stage boundary into destination slice [jlo, jhi).  [h] is the
   cost-to-go of the *source* stage (offset pre-applied); [ub] = infinity
   disables pruning.  Each slice writes only its own [next]/[pred_base]
   columns, so disjoint slices can run on separate domains. *)
let relax_dense_slice (d : Staged_dag.dense) ~n ~layers ~stage_base ~h_base ~ub
    dist next pred ~pred_base ~jlo ~jhi =
  let exec = d.Staged_dag.exec and trans = d.Staged_dag.trans in
  for i = 0 to n - 1 do
    let ti = i * n in
    for l = 0 to layers - 1 do
      let lb = l * n in
      let di = dist.(lb + i) in
      if di < infinity && not (di +. h_base.(i) > ub) then begin
        (* Stay on node i: same layer. *)
        if i >= jlo && i < jhi then begin
          let candidate = di +. trans.(ti + i) +. exec.(stage_base + i) in
          if candidate < next.(lb + i) then begin
            next.(lb + i) <- candidate;
            pred.(pred_base + lb + i) <- lb + i
          end
        end;
        (* Switch node: one layer up. *)
        if l + 1 < layers then begin
          let lb1 = lb + n in
          for j = jlo to jhi - 1 do
            if j <> i then begin
              let candidate = di +. trans.(ti + j) +. exec.(stage_base + j) in
              if candidate < next.(lb1 + j) then begin
                next.(lb1 + j) <- candidate;
                pred.(pred_base + lb1 + j) <- lb + i
              end
            end
          done
        end
      end
    done
  done

(* Closure-backed variant: same loop nest, same float operations in the
   same order, so closure and dense graphs agree bit-for-bit.  Node costs
   of the destination stage are snapshotted once per stage (the closures
   are pure). *)
let relax_closures (g : Staged_dag.t) ~n ~layers ~s ~h_base ~ub ~node_costs dist
    next pred ~pred_base =
  for i = 0 to n - 1 do
    for l = 0 to layers - 1 do
      let lb = l * n in
      let di = dist.(lb + i) in
      if di < infinity && not (di +. h_base.(i) > ub) then begin
        let candidate = di +. g.Staged_dag.edge_cost (s - 1) i i +. node_costs.(i) in
        if candidate < next.(lb + i) then begin
          next.(lb + i) <- candidate;
          pred.(pred_base + lb + i) <- lb + i
        end;
        if l + 1 < layers then begin
          let lb1 = lb + n in
          for j = 0 to n - 1 do
            if j <> i then begin
              let candidate = di +. g.Staged_dag.edge_cost (s - 1) i j +. node_costs.(j) in
              if candidate < next.(lb1 + j) then begin
                next.(lb1 + j) <- candidate;
                pred.(pred_base + lb1 + j) <- lb + i
              end
            end
          done
        end
      end
    done
  done

(* Work per stage below which fork/join overhead beats the parallel
   speedup; an explicit [jobs] argument overrides the heuristic. *)
let parallel_threshold = 1 lsl 16

let resolve_jobs ?jobs ~n ~layers () =
  match jobs with
  | Some j -> max 1 (min j n)
  | None ->
      if layers * n * n < parallel_threshold then 1
      else Parallel.resolve_jobs ~n ()

(* Per-stage source accounting (alive = relaxed, pruned = cut by the
   bound).  Only runs when instrumentation is on; the relax loops carry no
   counters. *)
let tally_sources ~n ~layers ~h_base ~ub dist =
  let alive = ref 0 and alive_lower = ref 0 and pruned = ref 0 in
  for l = 0 to layers - 1 do
    let lb = l * n in
    for i = 0 to n - 1 do
      let di = dist.(lb + i) in
      if di < infinity then
        if di +. h_base.(i) > ub then incr pruned
        else begin
          incr alive;
          if l + 1 < layers then incr alive_lower
        end
    done
  done;
  (!alive, !alive_lower, !pruned)

let solve_dp (g : Staged_dag.t) ?jobs ?upper_bound ~k ~initial () =
  let n = g.Staged_dag.n_nodes in
  let stages = g.Staged_dag.n_stages in
  (match initial with
  | Some j when j < 0 || j >= n -> invalid_arg "Kaware.solve: initial out of range"
  | Some _ | None -> ());
  if k < 0 then None
  else begin
    let layers = k + 1 in
    let states = layers * n in
    let dist = ref (Array.make states infinity) in
    let next = ref (Array.make states infinity) in
    let pred = Array.make (stages * states) (-1) in
    for j = 0 to n - 1 do
      let l =
        match initial with
        | Some init when j <> init -> 1
        | Some _ | None -> 0
      in
      if l < layers then begin
        let cost = g.Staged_dag.source_cost j +. g.Staged_dag.node_cost 0 j in
        if cost < !dist.((l * n) + j) then !dist.((l * n) + j) <- cost
      end
    done;
    (* The heuristic and the (slightly slackened, so float rounding can
       never cut the optimum) bound.  With no bound the heuristic is a
       zero vector and the prune test is vacuous. *)
    let h, ub =
      match upper_bound with
      | None -> (Array.make (stages * n) 0.0, infinity)
      | Some ub -> (Staged_dag.cost_to_go g, ub +. (Float.abs ub *. 1e-9))
    in
    let dense = g.Staged_dag.dense in
    let domains =
      match dense with Some _ -> resolve_jobs ?jobs ~n ~layers () | None -> 1
    in
    let instrumented = Obs.Registry.enabled () in
    let nodes_expanded = ref n and edges_relaxed = ref 0 and states_pruned = ref 0 in
    let node_costs = match dense with Some _ -> [||] | None -> Array.make n 0.0 in
    for s = 1 to stages - 1 do
      Array.fill !next 0 states infinity;
      let h_base = Array.sub h ((s - 1) * n) n in
      if instrumented then begin
        let alive, alive_lower, pruned = tally_sources ~n ~layers ~h_base ~ub !dist in
        nodes_expanded := !nodes_expanded + alive;
        edges_relaxed := !edges_relaxed + alive + (alive_lower * (n - 1));
        states_pruned := !states_pruned + pruned
      end;
      let pred_base = s * states in
      (match dense with
      | Some d ->
          let stage_base = s * n in
          if domains = 1 then
            relax_dense_slice d ~n ~layers ~stage_base ~h_base ~ub !dist !next pred
              ~pred_base ~jlo:0 ~jhi:n
          else
            ignore
              (* cddpd-lint: allow domain-race — workers dereference dist/next read-only; array writes are slice-disjoint per chunk and the buffer swap happens on the main domain between stages *)
              (Parallel.map_chunks ~jobs:domains ~n (fun ~lo ~hi ->
                   relax_dense_slice d ~n ~layers ~stage_base ~h_base ~ub !dist
                     !next pred ~pred_base ~jlo:lo ~jhi:hi))
      | None ->
          for j = 0 to n - 1 do
            node_costs.(j) <- g.Staged_dag.node_cost s j
          done;
          relax_closures g ~n ~layers ~s ~h_base ~ub ~node_costs !dist !next pred
            ~pred_base);
      let tmp = !dist in
      dist := !next;
      next := tmp
    done;
    if instrumented then begin
      Obs.Counter.add m_nodes_expanded !nodes_expanded;
      Obs.Counter.add m_edges_relaxed !edges_relaxed;
      Obs.Counter.add m_states_pruned !states_pruned;
      Obs.Counter.add m_domains_used domains
    end;
    let dist = !dist in
    let best = ref None in
    for l = 0 to layers - 1 do
      for j = 0 to n - 1 do
        if dist.((l * n) + j) < infinity then begin
          let total = dist.((l * n) + j) +. g.Staged_dag.sink_cost j in
          match !best with
          | Some (cost, _, _) when cost <= total -> ()
          | Some _ | None -> best := Some (total, l, j)
        end
      done
    done;
    match !best with
    | None -> None
    | Some (cost, l, j) ->
        let path = Array.make stages 0 in
        let rec rebuild s l j =
          path.(s) <- j;
          if s > 0 then begin
            let packed = pred.((s * states) + (l * n) + j) in
            rebuild (s - 1) (packed / n) (packed mod n)
          end
        in
        rebuild (stages - 1) l j;
        Some (cost, path)
  end

let solve ?jobs ?upper_bound g ~k ~initial =
  Obs.Span.with_span "advisor.kaware" (fun () ->
      solve_dp g ?jobs ?upper_bound ~k ~initial ())
