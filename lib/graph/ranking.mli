(** Shortest-path ranking (Section 5 of the paper).

    Enumerates the source-to-sink paths of a staged DAG in ascending cost
    order.  The implementation is best-first search with the exact
    cost-to-go as heuristic ({!Staged_dag.cost_to_go}), which emits paths
    in exactly nondecreasing total-cost order — the behaviour the paper
    requires from the path-deletion algorithm it cites.

    The paper's constrained optimizer stops at the first ranked path with
    at most [k] changes; {!solve_constrained} packages that stopping
    rule.

    Invariants: the heuristic [h(s, j)] (exact cheapest completion from
    node [j] of stage [s]) makes every popped state's f-value the true
    cost of the best completion of its prefix, so (1) completed paths pop
    in nondecreasing cost order and (2) the first accepted path is
    optimal among ≤[k]-change paths.  The price is memory: the frontier
    can hold one partial per (prefix), and a large [k]-gap between the
    unconstrained optimum and the first feasible path makes the rank — and
    the queue — blow up; that worst case is exactly the paper's argument
    for the k-aware DP.

    {2 Scaling}

    {!solve_constrained} keeps its frontier in a growable arena (node,
    stage, accumulated cost, parent slot) with the priority queue holding
    arena ids only, so per-partial memory is a few words and independent
    of path length.  Two budgets bound the search — [max_paths] (complete
    paths examined) and [max_queue] (frontier size) — and an optional
    [upper_bound] (cost of any known feasible ≤ [k]-changes path, e.g.
    the merging heuristic's) discards partials whose f-value exceeds the
    bound at insertion.  A ranked prefix that beats a feasible path's
    cost is never discarded, so the bound changes neither the accepted
    path nor its rank (property-tested; the bound carries a 1e-9 relative
    slack so float rounding can never cut the optimum).

    Observability: pops, emitted complete paths, rejected (over-budget)
    paths and bound-discarded partials feed the
    [advisor.ranking.nodes_expanded], [advisor.ranking.paths_emitted],
    [advisor.ranking.paths_pruned] and [advisor.ranking.partials_pruned]
    counters; each solve records its frontier high-water mark in the
    [advisor.ranking.queue_peak] histogram and runs inside an
    [advisor.ranking] span. *)

val enumerate : Staged_dag.t -> (float * int array) Seq.t
(** All source-to-sink paths, lazily, in nondecreasing cost order. *)

type give_up_reason =
  | Space_exhausted  (** every path ranked; none had ≤ [k] changes *)
  | Path_budget  (** [max_paths] complete paths examined *)
  | Queue_budget  (** the frontier hit [max_queue] *)

val reason_to_string : give_up_reason -> string

type gave_up = {
  examined : int;  (** complete paths examined before giving up *)
  queue_peak : int;  (** frontier high-water mark of the attempt *)
  reason : give_up_reason;
}

val solve_constrained :
  Staged_dag.t ->
  k:int ->
  initial:int option ->
  ?upper_bound:float ->
  ?max_paths:int ->
  ?max_queue:int ->
  unit ->
  [ `Found of float * int array * int | `Gave_up of gave_up ]
(** Rank paths until one has at most [k] changes.  [`Found (cost, path,
    rank)] reports the 1-based rank of the accepted path.  [`Gave_up g]
    distinguishes why the search stopped: the space was exhausted (no
    feasible path exists), [max_paths] (default 1_000_000) complete paths
    were examined, or the frontier hit [max_queue] (default unbounded).
    [upper_bound] must be the cost of a feasible ≤ [k]-changes path of
    the same instance; it bounds the frontier without changing the
    result. *)
