(** Shortest-path ranking (Section 5 of the paper).

    Enumerates the source-to-sink paths of a staged DAG in ascending cost
    order.  The implementation is best-first search with the exact
    cost-to-go as heuristic (computed by a backward pass), which emits
    paths in exactly nondecreasing total-cost order — the behaviour the
    paper requires from the path-deletion algorithm it cites.

    The paper's constrained optimizer stops at the first ranked path with
    at most [k] changes; {!solve_constrained} packages that stopping
    rule.

    Invariants: the heuristic [h(s, j)] (exact cheapest completion from
    node [j] of stage [s]) makes every popped state's f-value the true
    cost of the best completion of its prefix, so (1) completed paths pop
    in nondecreasing cost order and (2) the first accepted path is
    optimal among ≤[k]-change paths.  The price is memory: the frontier
    can hold one partial per (prefix), and a large [k]-gap between the
    unconstrained optimum and the first feasible path makes the rank — and
    the queue — blow up; that worst case is exactly the paper's argument
    for the k-aware DP.

    Observability: pops, emitted complete paths and rejected
    (over-budget) paths feed the [advisor.ranking.nodes_expanded],
    [advisor.ranking.paths_emitted] and [advisor.ranking.paths_pruned]
    counters; {!solve_constrained} runs inside an [advisor.ranking]
    span. *)

val enumerate : Staged_dag.t -> (float * int array) Seq.t
(** All source-to-sink paths, lazily, in nondecreasing cost order. *)

val solve_constrained :
  Staged_dag.t ->
  k:int ->
  initial:int option ->
  ?max_paths:int ->
  unit ->
  [ `Found of float * int array * int | `Gave_up of int ]
(** Rank paths until one has at most [k] changes.  [`Found (cost, path,
    rank)] reports the 1-based rank of the accepted path.  [`Gave_up n]
    means [max_paths] (default 1_000_000) paths were examined without
    success — the worst case the paper warns about. *)
