type dense = {
  exec : float array;  (* stage-major: stage * n_nodes + node *)
  trans : float array;  (* src * n_nodes + dst *)
  source : float array;
  sink : float array;
}

type t = {
  n_stages : int;
  n_nodes : int;
  node_cost : int -> int -> float;
  edge_cost : int -> int -> int -> float;
  source_cost : int -> float;
  sink_cost : int -> float;
  dense : dense option;
}

let zero _ = 0.0

let make ~n_stages ~n_nodes ~node_cost ~edge_cost ?(source_cost = zero)
    ?(sink_cost = zero) () =
  if n_stages <= 0 then invalid_arg "Staged_dag.make: n_stages <= 0";
  if n_nodes <= 0 then invalid_arg "Staged_dag.make: n_nodes <= 0";
  { n_stages; n_nodes; node_cost; edge_cost; source_cost; sink_cost; dense = None }

let of_matrices ~exec ~trans ?source ?sink () =
  let n_stages = Array.length exec in
  if n_stages = 0 then invalid_arg "Staged_dag.of_matrices: no stages";
  let n_nodes = Array.length trans in
  if n_nodes = 0 then invalid_arg "Staged_dag.of_matrices: no nodes";
  let flatten ~rows ~cols what m =
    let flat = Array.make (rows * cols) 0.0 in
    Array.iteri
      (fun i row ->
        if Array.length row <> cols then
          invalid_arg (Printf.sprintf "Staged_dag.of_matrices: ragged %s row" what);
        Array.blit row 0 flat (i * cols) cols)
      m;
    flat
  in
  let exec = flatten ~rows:n_stages ~cols:n_nodes "exec" exec in
  let trans = flatten ~rows:n_nodes ~cols:n_nodes "trans" trans in
  let vector what v =
    match v with
    | None -> Array.make n_nodes 0.0
    | Some v ->
        if Array.length v <> n_nodes then
          invalid_arg (Printf.sprintf "Staged_dag.of_matrices: %s length" what);
        Array.copy v
  in
  let source = vector "source" source in
  let sink = vector "sink" sink in
  let d = { exec; trans; source; sink } in
  {
    n_stages;
    n_nodes;
    (* The closures read the same flat arrays the fast paths index, so
       both views of the graph agree bit-for-bit. *)
    node_cost = (fun s j -> exec.((s * n_nodes) + j));
    edge_cost = (fun _s i j -> trans.((i * n_nodes) + j));
    source_cost = (fun j -> source.(j));
    sink_cost = (fun j -> sink.(j));
    dense = Some d;
  }

let check_path t path =
  if Array.length path <> t.n_stages then
    invalid_arg "Staged_dag: path length differs from n_stages";
  Array.iter
    (fun j ->
      if j < 0 || j >= t.n_nodes then invalid_arg "Staged_dag: path node out of range")
    path

let path_cost t path =
  check_path t path;
  let acc = ref (t.source_cost path.(0) +. t.node_cost 0 path.(0)) in
  for s = 1 to t.n_stages - 1 do
    acc := !acc +. t.edge_cost (s - 1) path.(s - 1) path.(s) +. t.node_cost s path.(s)
  done;
  !acc +. t.sink_cost path.(t.n_stages - 1)

(* Exact unconstrained cost-to-go, flat and stage-major:
   [h.(s * n_nodes + j)] is the cheapest completion from node [j] of stage
   [s] — excluding node [j]'s own cost, including the sink edge.  The dense
   and closure variants perform the same float operations in the same
   order, so both representations agree bit-for-bit; this is the
   admissible heuristic shared by the ranking enumerator and the k-aware
   branch-and-bound pruner. *)
let cost_to_go t =
  let n = t.n_nodes in
  let stages = t.n_stages in
  let h = Array.make (stages * n) 0.0 in
  let last = (stages - 1) * n in
  for j = 0 to n - 1 do
    h.(last + j) <- t.sink_cost j
  done;
  (* [comp.(j)] hoists the loop-invariant "arrive at j" part (node cost
     plus completion) out of the O(n^2) source scan; both variants use the
     same association, so dense and closure graphs still agree
     bit-for-bit. *)
  let comp = Array.make n 0.0 in
  (match t.dense with
  | Some d ->
      let exec = d.exec and trans = d.trans in
      for s = stages - 2 downto 0 do
        let hb = s * n and hb1 = (s + 1) * n in
        for j = 0 to n - 1 do
          comp.(j) <- exec.(hb1 + j) +. h.(hb1 + j)
        done;
        for i = 0 to n - 1 do
          let ti = i * n in
          let best = ref infinity in
          for j = 0 to n - 1 do
            let candidate = trans.(ti + j) +. comp.(j) in
            if candidate < !best then best := candidate
          done;
          h.(hb + i) <- !best
        done
      done
  | None ->
      for s = stages - 2 downto 0 do
        let hb = s * n and hb1 = (s + 1) * n in
        for j = 0 to n - 1 do
          comp.(j) <- t.node_cost (s + 1) j +. h.(hb1 + j)
        done;
        for i = 0 to n - 1 do
          let best = ref infinity in
          for j = 0 to n - 1 do
            let candidate = t.edge_cost s i j +. comp.(j) in
            if candidate < !best then best := candidate
          done;
          h.(hb + i) <- !best
        done
      done);
  h

let path_changes t ~initial path =
  check_path t path;
  let changes = ref 0 in
  (match initial with
  | Some j -> if path.(0) <> j then incr changes
  | None -> ());
  for s = 1 to t.n_stages - 1 do
    if path.(s) <> path.(s - 1) then incr changes
  done;
  !changes

(* One stage of the Bellman relaxation, closure-backed and dense-backed.
   The two must perform the same float operations in the same order. *)

let relax_closures t dist next pred s =
  let n = t.n_nodes in
  for j = 0 to n - 1 do
    let node = t.node_cost s j in
    for i = 0 to n - 1 do
      let candidate = dist.(i) +. t.edge_cost (s - 1) i j +. node in
      if candidate < next.(j) then begin
        next.(j) <- candidate;
        pred.(s).(j) <- i
      end
    done
  done

let relax_dense d ~n dist next pred s =
  let exec = d.exec and trans = d.trans in
  let stage_base = s * n in
  for j = 0 to n - 1 do
    let node = exec.(stage_base + j) in
    let best = ref next.(j) and best_pred = ref (-1) in
    for i = 0 to n - 1 do
      let candidate = dist.(i) +. trans.((i * n) + j) +. node in
      if candidate < !best then begin
        best := candidate;
        best_pred := i
      end
    done;
    if !best_pred >= 0 then begin
      next.(j) <- !best;
      pred.(s).(j) <- !best_pred
    end
  done

let shortest_path t =
  let n = t.n_nodes in
  (* dist.(j): best cost of reaching node j of the current stage;
     pred.(s).(j): predecessor of (s, j) on that best path. *)
  let dist = Array.init n (fun j -> t.source_cost j +. t.node_cost 0 j) in
  let pred = Array.make_matrix t.n_stages n (-1) in
  let next = Array.make n infinity in
  for s = 1 to t.n_stages - 1 do
    Array.fill next 0 n infinity;
    (match t.dense with
    | Some d -> relax_dense d ~n dist next pred s
    | None -> relax_closures t dist next pred s);
    Array.blit next 0 dist 0 n
  done;
  let best = ref 0 in
  let best_cost = ref infinity in
  for j = 0 to n - 1 do
    let total = dist.(j) +. t.sink_cost j in
    if total < !best_cost then begin
      best_cost := total;
      best := j
    end
  done;
  let path = Array.make t.n_stages 0 in
  path.(t.n_stages - 1) <- !best;
  for s = t.n_stages - 1 downto 1 do
    path.(s - 1) <- pred.(s).(path.(s))
  done;
  (!best_cost, path)
