module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Problem = Cddpd_core.Problem
module Text_table = Cddpd_util.Text_table

type point = {
  k : int;
  kaware_relative : float;
  merging_relative : float;
  kaware_seconds : float;
  merging_seconds : float;
  kaware_cost : float;
  merging_cost : float;
}

type result = {
  points : point list;
  unconstrained_seconds : float;
  unconstrained_cost : float;
  repeats : int;
}

(* Solver runtimes at this instance size are microseconds; time a batch and
   take the per-solve mean, then the median over several batches. *)
let time_batched ~repeats f =
  let batch = 16 in
  let samples =
    Array.init repeats (fun _ ->
        (* cddpd-lint: allow determinism — measuring wall-clock runtime is this experiment's purpose *)
        let start = Unix.gettimeofday () in
        for _ = 1 to batch do
          ignore (f ())
        done;
        (* cddpd-lint: allow determinism — measuring wall-clock runtime is this experiment's purpose *)
        (Unix.gettimeofday () -. start) /. float_of_int batch)
  in
  Cddpd_util.Stats.percentile samples 50.0

let default_ks = [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ]

let cost_of = function
  | Ok s -> s.Solution.cost
  | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) -> infinity

(* One (timing, cost) measurement of both constrained solvers at a given
   k.  The costs are deterministic — the wall-clock medians are not —
   which is what lets parallel and sequential runs of this experiment be
   cross-checked at all. *)
let measure_point ~repeats problem k =
  let solve method_name k () = Optimizer.solve problem ~method_name ?k () in
  let kaware_seconds = time_batched ~repeats (solve Solution.Kaware (Some k)) in
  let merging_seconds = time_batched ~repeats (solve Solution.Merging (Some k)) in
  let kaware_cost = cost_of (solve Solution.Kaware (Some k) ()) in
  let merging_cost = cost_of (solve Solution.Merging (Some k) ()) in
  (kaware_seconds, merging_seconds, kaware_cost, merging_cost)

let assemble ~repeats ~ks ~unconstrained_seconds ~unconstrained_cost measured =
  let points =
    List.map2
      (fun k (kaware_seconds, merging_seconds, kaware_cost, merging_cost) ->
        {
          k;
          kaware_seconds;
          merging_seconds;
          kaware_cost;
          merging_cost;
          kaware_relative = kaware_seconds /. unconstrained_seconds;
          merging_relative = merging_seconds /. unconstrained_seconds;
        })
      ks measured
  in
  { points; unconstrained_seconds; unconstrained_cost; repeats }

let run ?(ks = default_ks) ?(repeats = 32) (session : Session.t) =
  let problem = session.Session.problem_w1 in
  let solve method_name k () = Optimizer.solve problem ~method_name ?k () in
  let unconstrained_seconds =
    time_batched ~repeats (solve Solution.Unconstrained None)
  in
  let unconstrained_cost = cost_of (solve Solution.Unconstrained None ()) in
  let measured = List.map (measure_point ~repeats problem) ks in
  assemble ~repeats ~ks ~unconstrained_seconds ~unconstrained_cost measured

let run_cells ?(ks = default_ks) ?(repeats = 32) ?cell_jobs (session : Session.t) =
  let problem = session.Session.problem_w1 in
  (* Force the memoized sequence graph on the main domain so solver cells
     share it read-only (Lazy.force is not safe to race). *)
  ignore (Problem.to_graph problem);
  let solve method_name k () = Optimizer.solve problem ~method_name ?k () in
  let baseline_cell =
    Runner.cell "unconstrained" (fun _ctx ->
        let seconds = time_batched ~repeats (solve Solution.Unconstrained None) in
        let cost = cost_of (solve Solution.Unconstrained None ()) in
        (seconds, 0.0, cost, 0.0))
  in
  let point_cells =
    List.map
      (fun k ->
        Runner.cell (Printf.sprintf "k=%d" k) (fun _ctx ->
            measure_point ~repeats problem k))
      ks
  in
  match
    Runner.run ?cell_jobs ~seed:session.Session.config.Setup.seed
      (baseline_cell :: point_cells)
  with
  | (unconstrained_seconds, _, unconstrained_cost, _) :: measured ->
      assemble ~repeats ~ks ~unconstrained_seconds ~unconstrained_cost measured
  | [] -> failwith "Figure4: unexpected cell count"

let print result =
  print_endline
    "Figure 4: Constrained-optimizer runtime relative to the unconstrained optimizer";
  let table =
    Text_table.create
      [
        ("k", Text_table.Right);
        ("k-aware graph", Text_table.Right);
        ("merging", Text_table.Right);
        ("k-aware (us)", Text_table.Right);
        ("merging (us)", Text_table.Right);
        ("merging cost overhead", Text_table.Right);
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [
          string_of_int p.k;
          Printf.sprintf "%.0f%%" (p.kaware_relative *. 100.);
          Printf.sprintf "%.0f%%" (p.merging_relative *. 100.);
          Printf.sprintf "%.1f" (p.kaware_seconds *. 1e6);
          Printf.sprintf "%.1f" (p.merging_seconds *. 1e6);
          (if Float.equal p.kaware_cost infinity || Float.equal p.merging_cost infinity then "-"
           else
             Printf.sprintf "%+.2f%%" (((p.merging_cost /. p.kaware_cost) -. 1.0) *. 100.));
        ])
    result.points;
  Text_table.print table;
  Printf.printf "unconstrained solve: %.1f us (median of %d batches)\n"
    (result.unconstrained_seconds *. 1e6)
    result.repeats
