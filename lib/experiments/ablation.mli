(** Ablation — all solvers side by side (beyond the paper's figures).

    For a range of change budgets, compares every solver's schedule cost
    (Definition 1's objective), change count and runtime, plus the
    reactive online tuner and the best static design (k-aware with k = 0)
    as reference points.  Quantifies: (a) how close the heuristics get to
    the k-aware optimum, (b) where ranking becomes impractical, and
    (c) when the hybrid rule picks the right engine. *)

type entry = {
  method_label : string;
  k : int option;
  cost : float;
  changes : int;
  elapsed : float;
  optimality_gap : float;  (** (cost - optimal cost at this k) / optimal *)
}

type result = { entries : entry list; unconstrained_cost : float }

val run : ?ks:int list -> Session.t -> result
(** Default ks: 0, 2, 6, 10. *)

val run_cells : ?ks:int list -> ?cell_jobs:int -> Session.t -> result
(** {!run} as {!Runner} cells — the unconstrained baseline, one optimal
    (gap-reference) cell and one cell per constrained method for each k,
    and the online tuner — over the session's (pre-forced) problem graph.
    Entries come back in {!run}'s exact order; identical result modulo
    the [elapsed] wall-clock fields. *)

val print : result -> unit
