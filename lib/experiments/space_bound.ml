module Design = Cddpd_catalog.Design
module Structure = Cddpd_catalog.Structure
module Index_def = Cddpd_catalog.Index_def
module Database = Cddpd_engine.Database
module Cost_model = Cddpd_engine.Cost_model
module Config_space = Cddpd_core.Config_space
module Problem = Cddpd_core.Problem
module Optimizer = Cddpd_core.Optimizer
module Solution = Cddpd_core.Solution
module Text_table = Cddpd_util.Text_table

type point = {
  bound_bytes : int option;
  n_configs : int;
  cost : float;
  changes : int;
  largest_design : string;
}

type result = { points : point list }

let size_of db structure =
  Cost_model.structure_size_bytes (Database.params db)
    ~stats:(Database.table_stats db (Structure.table structure))
    structure

let default_bounds (session : Session.t) =
  let db = session.Session.db in
  let size columns =
    size_of db (Structure.index (Index_def.make ~table:Setup.table_name ~columns))
  in
  let single = size [ "a" ] in
  let composite = size [ "a"; "b" ] in
  [ Some 1; Some single; Some composite; Some (2 * composite); None ]

let measure (session : Session.t) bound_bytes =
  let db = session.Session.db in
  let candidates = List.map Structure.index Setup.paper_candidates in
  let space =
    Config_space.enumerate ~candidates ~max_structures:2 ?space_bound_bytes:bound_bytes
      ~size_of:(size_of db) ()
  in
  let problem =
    Problem.build ~params:(Database.params db)
      ~stats_of:(fun table -> Database.table_stats db table)
      ~steps:session.Session.steps_w1 ~space ~initial:Design.empty ()
  in
  let solution =
    match Optimizer.solve problem ~method_name:Solution.Kaware ~k:2 () with
    | Ok s -> s
    | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) ->
        failwith "Space_bound: solver failed"
  in
  let largest_design =
    Array.fold_left
      (fun acc design ->
        match acc with
        | Some best when Design.cardinality best >= Design.cardinality design -> acc
        | _ -> Some design)
      None
      (Solution.schedule problem solution)
    |> Option.map Design.name
    |> Option.value ~default:"{}"
  in
  {
    bound_bytes;
    n_configs = Config_space.size space;
    cost = solution.Solution.cost;
    changes = solution.Solution.changes;
    largest_design;
  }

let run ?bounds (session : Session.t) =
  let bounds = match bounds with Some b -> b | None -> default_bounds session in
  { points = List.map (measure session) bounds }

let bound_label = function
  | None -> "unbounded"
  | Some b -> Printf.sprintf "b=%d" b

let run_cells ?bounds ?cell_jobs (session : Session.t) =
  (* default_bounds resolves the shared table statistics on the main
     domain, making [Database.table_stats] a pure read for the cells
     (each cell builds its own problem, but against the session's db
     stats). *)
  let bounds = match bounds with Some b -> b | None -> default_bounds session in
  ignore (Database.table_stats session.Session.db Setup.table_name);
  let cells =
    List.map
      (fun bound ->
        Runner.cell (bound_label bound) (fun _ctx -> measure session bound))
      bounds
  in
  { points = Runner.run ?cell_jobs ~seed:session.Session.config.Setup.seed cells }

let print result =
  print_endline
    "Space-bound sweep: optimal k=2 cost under SIZE(C) <= b (<=2 structures/config)";
  let table =
    Text_table.create
      [
        ("bound b", Text_table.Right);
        ("configs that fit", Text_table.Right);
        ("optimal k=2 cost", Text_table.Right);
        ("changes", Text_table.Right);
        ("largest design used", Text_table.Left);
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [
          (match p.bound_bytes with
          | None -> "unbounded"
          | Some b when b >= 1024 * 1024 -> Printf.sprintf "%d MiB" (b / (1024 * 1024))
          | Some b when b >= 1024 -> Printf.sprintf "%d KiB" (b / 1024)
          | Some b -> Printf.sprintf "%d B" b);
          string_of_int p.n_configs;
          Printf.sprintf "%.0f" p.cost;
          string_of_int p.changes;
          p.largest_design;
        ])
    result.points;
  Text_table.print table
