(** The experiment cell scheduler: deterministic fork/join over independent
    experiment cells.

    A {e cell} is one independent unit of an experiment sweep — one
    (workload × advisor × k) combination, one replay, one solver timing —
    expressed as a labelled closure.  {!run} executes the cells on up to
    [cell_jobs] domains (via {!Cddpd_util.Parallel.map_chunks}) and
    returns their results {e in declaration order}, so a parallel sweep
    reports exactly what the sequential one does.

    {2 Determinism contract}

    - Results join in declaration order regardless of the domain count.
    - Each cell receives its own {!Cddpd_util.Rng.t}, split from a master
      seeded with [run]'s [seed] in declaration order — cell [i]'s stream
      depends only on [(seed, i)], never on how cells were chunked.
    - Cell bodies must not share mutable state: a cell that touches a
      database builds its own [Disk]/[Buffer_pool]/[Database] (lint R3
      holds by construction — there is nothing global to race on); cells
      may read shared immutable data (statement arrays, a pre-forced
      [Problem.t]) freely.

    {2 Job resolution and nesting}

    The domain count is resolved as: explicit [cell_jobs] argument, else
    {!set_default_cell_jobs} (the [--cell-jobs] CLI flag), else the
    [CDDPD_JOBS] environment variable, else
    {!Cddpd_util.Parallel.ncpu} — deliberately independent of
    [Parallel.set_default_jobs] so [--jobs] (problem construction) and
    [--cell-jobs] (experiment cells) stay distinct knobs.  While a
    parallel fan-out is in flight, the nested [Parallel] default is
    pinned to 1 (and restored afterwards) so cell bodies don't
    oversubscribe the machine; [run] must be called from the main domain.

    {2 Observability}

    Each [run] adds the cell count to [experiments.cells] and the resolved
    domain count to [experiments.cell_jobs_used], and wraps each cell in an
    [experiments.cell] span.  Recording is main-domain-only (see
    {!Cddpd_obs.Switch.active}), so with [cell_jobs > 1] the process-wide
    metrics reflect main-domain cells only. *)

type ctx = {
  label : string;  (** the cell's label, for diagnostics *)
  rng : Cddpd_util.Rng.t;  (** the cell's private deterministic stream *)
}

type 'a cell

val cell : string -> (ctx -> 'a) -> 'a cell
(** [cell label body] declares a cell. *)

val default_cell_jobs : unit -> int
(** The resolved default domain count: last {!set_default_cell_jobs}
    value, else [CDDPD_JOBS], else {!Cddpd_util.Parallel.ncpu}. *)

val set_default_cell_jobs : int -> unit
(** Override the process default (the [--cell-jobs] CLI flag).  Raises
    [Invalid_argument] if [jobs < 1]. *)

val run : ?cell_jobs:int -> ?seed:int -> 'a cell list -> 'a list
(** Execute the cells on up to [cell_jobs] domains and return their
    results in declaration order.  [seed] (default 0) seeds the master
    stream the per-cell streams are split from.  If any cell raises, every
    domain is joined first and the exception is re-raised. *)
