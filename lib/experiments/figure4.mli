(** Figure 4 — optimizer runtimes relative to the unconstrained optimizer.

    Times the optimal k-aware solver and the sequential-merging heuristic
    for a range of change budgets k, reporting each as a percentage of the
    unconstrained (plain sequence graph) solve time, alongside each
    solver's (deterministic) schedule cost.

    Expected shape: the k-aware curve grows roughly linearly in k (its
    graph has k+1 layers); the merging curve {e decreases} with k (fewer
    merge steps are needed), motivating the paper's hybrid suggestion. *)

type point = {
  k : int;
  kaware_relative : float;  (** k-aware time / unconstrained time *)
  merging_relative : float;
  kaware_seconds : float;
  merging_seconds : float;
  kaware_cost : float;  (** optimal constrained schedule cost at this k *)
  merging_cost : float;  (** the heuristic's cost ([infinity] if it failed) *)
}

type result = {
  points : point list;
  unconstrained_seconds : float;
  unconstrained_cost : float;
  repeats : int;  (** timing repetitions per point *)
}

val run : ?ks:int list -> ?repeats:int -> Session.t -> result
(** Defaults: k in 2, 4, ..., 18 (the paper's x-axis) and 32 repeats per
    timing (solver runtimes are microseconds at this instance size, so
    each sample is itself a mean over a batch). *)

val run_cells : ?ks:int list -> ?repeats:int -> ?cell_jobs:int -> Session.t -> result
(** {!run} as {!Runner} cells — one baseline cell plus one per k — over
    the session's (pre-forced) problem graph.  The cost fields are
    bit-identical to {!run}'s; the wall-clock fields are timings and
    inherently run-to-run noisy (more so when cells share cores). *)

val print : result -> unit
