module Schema = Cddpd_catalog.Schema
module Index_def = Cddpd_catalog.Index_def
module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Data_gen = Cddpd_workload.Data_gen
module Spec = Cddpd_workload.Spec
module Config_space = Cddpd_core.Config_space
module Problem = Cddpd_core.Problem

type config = {
  rows : int;
  value_range : int;
  scale : float;
  seed : int;
  pool_capacity : int;
  readahead : int;
}

let default_config =
  {
    rows = 100_000;
    value_range = 20_000;
    scale = 1.0;
    seed = 20080407;
    pool_capacity = 16384;
    readahead = Cddpd_storage.Buffer_pool.default_readahead;
  }

let test_config =
  {
    rows = 5_000;
    value_range = 1_000;
    scale = 0.04;
    seed = 20080407;
    pool_capacity = 1024;
    readahead = Cddpd_storage.Buffer_pool.default_readahead;
  }

let table_name = "t"

let schema =
  Schema.table table_name
    [
      ("a", Schema.Int_type);
      ("b", Schema.Int_type);
      ("c", Schema.Int_type);
      ("d", Schema.Int_type);
    ]

let index columns = Index_def.make ~table:table_name ~columns

let paper_candidates =
  [
    index [ "a" ];
    index [ "b" ];
    index [ "c" ];
    index [ "d" ];
    index [ "a"; "b" ];
    index [ "c"; "d" ];
  ]

let paper_space = Config_space.single_index paper_candidates

let make_database config =
  let db =
    Database.create ~pool_capacity:config.pool_capacity ~readahead:config.readahead
      [ schema ]
  in
  let rows =
    Data_gen.uniform_rows ~columns:4 ~rows:config.rows ~value_range:config.value_range
      ~seed:config.seed
  in
  Database.load db ~table:table_name rows;
  (* Resolve statistics now (load leaves them lazy) so replays measured
     against this database never pay the histogram scan mid-measurement. *)
  Database.analyze db;
  db

let workload config name = Cddpd_workload.Workloads.by_name name ~scale:config.scale ()

let workload_steps config spec =
  Spec.generate spec ~table:table_name ~value_range:config.value_range
    ~seed:(config.seed + 1)

let build_problem db ~steps =
  Problem.build ~params:(Database.params db)
    ~stats_of:(fun table -> Database.table_stats db table)
    ~steps ~space:paper_space ~initial:Design.empty ~count_initial_change:false ()
