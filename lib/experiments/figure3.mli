(** Figure 3 — relative execution times of W1/W2/W3 under the constrained
    and unconstrained W1-based designs.

    Each workload is replayed through the real engine under both design
    schedules; "time" is total buffer-pool page accesses (execution plus
    index-build transitions), and everything is reported relative to W1
    under the unconstrained design, exactly as the paper's bar chart.

    Expected shape: W1 is somewhat slower (paper: 14%) under the
    constrained design; W2 and W3 are {e faster} under the constrained
    design than under the unconstrained one (paper: the unconstrained bars
    exceed the constrained ones by up to ~59%). *)

type measurement = {
  workload : string;
  unconstrained_io : int;
  constrained_io : int;
  relative_unconstrained : float;  (** vs. W1-under-unconstrained = 1.0 *)
  relative_constrained : float;
}

type result = {
  measurements : measurement list;  (** W1, W2, W3 *)
  baseline_io : int;  (** W1 under the unconstrained design *)
}

val run : Session.t -> result

val run_cells : ?cell_jobs:int -> Session.t -> result
(** Same result as {!run}, computed as six {!Runner} cells (workload ×
    schedule), each replaying against its own freshly built database —
    bit-identical to {!run} because logical I/O is independent of buffer
    residency.  The Table 2 schedules the replays need are computed on
    the main domain first. *)

val print : result -> unit
