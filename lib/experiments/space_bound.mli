(** Space-bound sweep (an extension beyond the paper's figures).

    Definition 1 carries a storage budget: every configuration must satisfy
    SIZE(C) <= b.  The paper's experiments fix a 7-configuration space and
    never vary b; this experiment allows up to two structures per
    configuration and sweeps b from "nothing fits" to "everything fits",
    reporting the optimal k = 2 schedule cost at each budget.  Expected
    shape: cost is nonincreasing in b, with steps where richer
    configurations (e.g. [{I(a,b), I(c,d)}]) become feasible; at the
    high end a single phase-spanning pair design can even remove the need
    to change designs at all. *)

type point = {
  bound_bytes : int option;  (** [None] = unbounded *)
  n_configs : int;  (** configurations that fit the budget *)
  cost : float;  (** optimal k = 2 sequence cost *)
  changes : int;
  largest_design : string;  (** the biggest design used by the schedule *)
}

type result = { points : point list }

val run : ?bounds:int option list -> Session.t -> result
(** Default bounds: 1 byte (only the empty design), the size of one
    single-column index, one composite index, two composites, and
    unbounded. *)

val run_cells : ?bounds:int option list -> ?cell_jobs:int -> Session.t -> result
(** {!run} as one {!Runner} cell per bound (each builds its own problem
    over the pre-resolved session statistics).  Identical result modulo
    nothing — every reported field is deterministic. *)

val print : result -> unit
