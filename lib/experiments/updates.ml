module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Dml_gen = Cddpd_workload.Dml_gen
module Problem = Cddpd_core.Problem
module Optimizer = Cddpd_core.Optimizer
module Solution = Cddpd_core.Solution
module Text_table = Cddpd_util.Text_table

type point = {
  update_fraction : float;
  constrained_cost : float;
  unconstrained_cost : float;
  constrained_changes : int;
  distinct_indexes : int;
  empty_steps : int;
}

type result = { points : point list }

let measure (session : Session.t) fraction =
  let config = session.Session.config in
  let steps =
    Array.map
      (Dml_gen.blend ~update_fraction:fraction
         ~value_range:config.Setup.value_range ~seed:(config.Setup.seed + 7))
      session.Session.steps_w1
  in
  let problem = Setup.build_problem session.Session.db ~steps in
  let unconstrained = Optimizer.unconstrained problem in
  let constrained =
    match Optimizer.solve problem ~method_name:Solution.Kaware ~k:2 () with
    | Ok s -> s
    | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) ->
        failwith "Updates: solver failed"
  in
  let schedule = Solution.schedule problem constrained in
  let distinct =
    Array.fold_left
      (fun acc design -> if List.exists (Design.equal design) acc then acc else design :: acc)
      [] schedule
  in
  let distinct_indexes =
    List.fold_left
      (fun acc design -> acc + Design.cardinality design)
      0 distinct
  in
  let empty_steps =
    Array.fold_left (fun acc d -> if Design.is_empty d then acc + 1 else acc) 0 schedule
  in
  {
    update_fraction = fraction;
    constrained_cost = constrained.Solution.cost;
    unconstrained_cost = unconstrained.Solution.cost;
    constrained_changes = constrained.Solution.changes;
    distinct_indexes;
    empty_steps;
  }

let run ?(fractions = [ 0.0; 0.1; 0.3; 0.5; 0.8 ]) session =
  { points = List.map (measure session) fractions }

let run_cells ?(fractions = [ 0.0; 0.1; 0.3; 0.5; 0.8 ]) ?cell_jobs
    (session : Session.t) =
  (* Resolve the shared table statistics on the main domain so each
     cell's problem build reads them without racing the memo. *)
  ignore (Database.table_stats session.Session.db Setup.table_name);
  let cells =
    List.map
      (fun fraction ->
        Runner.cell
          (Printf.sprintf "update-fraction=%.2f" fraction)
          (fun _ctx -> measure session fraction))
      fractions
  in
  { points = Runner.run ?cell_jobs ~seed:session.Session.config.Setup.seed cells }

let print result =
  print_endline "Updates ablation: blending UPDATEs into W1 (k = 2 designs)";
  let table =
    Text_table.create
      [
        ("update fraction", Text_table.Right);
        ("cost k=2", Text_table.Right);
        ("cost unconstrained", Text_table.Right);
        ("overhead of k=2", Text_table.Right);
        ("indexes used", Text_table.Right);
        ("index-free steps", Text_table.Right);
      ]
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [
          Printf.sprintf "%.0f%%" (p.update_fraction *. 100.);
          Printf.sprintf "%.0f" p.constrained_cost;
          Printf.sprintf "%.0f" p.unconstrained_cost;
          Printf.sprintf "%.1f%%"
            ((p.constrained_cost /. p.unconstrained_cost -. 1.0) *. 100.);
          string_of_int p.distinct_indexes;
          string_of_int p.empty_steps;
        ])
    result.points;
  Text_table.print table
