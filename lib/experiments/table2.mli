(** Table 2 — dynamic workloads and recommended physical designs.

    Runs the unconstrained optimizer and the constrained (k = 2) k-aware
    optimizer on workload W1 and tabulates, per 500-query segment, the mix
    letters of W1/W2/W3 and the design each optimizer assigns — the
    reproduction of the paper's Table 2.  The expected shape: the
    unconstrained design tracks every minor shift, the k = 2 design only
    the two major ones. *)

type row = {
  query_range : string;  (** e.g. ["1-500"] *)
  w1_mix : string;
  design_unconstrained : string;
  design_k2 : string;
  w2_mix : string;
  w3_mix : string;
}

type result = {
  rows : row list;
  unconstrained : Cddpd_core.Solution.t;
  constrained : Cddpd_core.Solution.t;
  schedule_unconstrained : Cddpd_catalog.Design.t array;
  schedule_k2 : Cddpd_catalog.Design.t array;
}

val run : Session.t -> result

val run_cells : ?cell_jobs:int -> Session.t -> result
(** {!run} as two {!Runner} solver cells over the session's (pre-forced)
    problem graph.  Identical result modulo the solutions' [elapsed]
    wall-clock fields. *)

val print : result -> unit
