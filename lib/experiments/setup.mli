(** Shared experimental setup: the paper's test database, candidate set and
    configuration space (Section 6.1).

    The paper used a 2.5M-row table on SQL Server; the default here is a
    250k-row table on the simulated engine with the value range scaled to
    keep the rows-per-value density (5) — all reported quantities are
    relative, so ratios are preserved.  [rows] and [scale] let callers run
    anything from unit-test-sized to paper-sized instances. *)

type config = {
  rows : int;  (** table cardinality (paper: 2,500,000) *)
  value_range : int;  (** column value domain (paper: 500,000) *)
  scale : float;  (** workload segment-length multiplier (1.0 = 500) *)
  seed : int;  (** master seed for data and workload generation *)
  pool_capacity : int;  (** buffer pool frames *)
  readahead : int;
      (** sequential prefetch budget of the pool ([0] = off; logical I/O —
          the unit every figure reports — is unaffected either way) *)
}

val default_config : config
(** rows 100_000, value_range 20_000, scale 1.0, seed 20080407 (the
    conference date), pool 16384 frames.  The rows-per-value density (5)
    matches the paper's 2.5M rows over 500k values. *)

val test_config : config
(** A small instance for unit tests: 5_000 rows, scale 0.04. *)

val table_name : string
(** ["t"] *)

val schema : Cddpd_catalog.Schema.table
(** t(a int, b int, c int, d int). *)

val paper_candidates : Cddpd_catalog.Index_def.t list
(** I(a), I(b), I(c), I(d), I(a,b), I(c,d). *)

val paper_space : Cddpd_core.Config_space.t
(** The 7 configurations: empty plus one per candidate. *)

val make_database : config -> Cddpd_engine.Database.t
(** Create, load and analyze the test database. *)

val workload : config -> string -> Cddpd_workload.Spec.t
(** ["W1"], ["W2"] or ["W3"], scaled by [config.scale]. *)

val workload_steps :
  config -> Cddpd_workload.Spec.t -> Cddpd_sql.Ast.statement array array
(** Generate the workload's statements, one array per segment. *)

val build_problem :
  Cddpd_engine.Database.t ->
  steps:Cddpd_sql.Ast.statement array array ->
  Cddpd_core.Problem.t
(** Problem instance over {!paper_space} with an empty initial design and
    the paper's change-counting convention (initial change free). *)
