(** Update-fraction ablation (an extension beyond the paper's figures).

    Definition 1 covers "queries and updates", but the paper's experiments
    are query-only.  This experiment blends a growing fraction of UPDATE
    statements into W1 and re-runs the constrained advisor: as updates
    grow, index maintenance erodes lookup benefit, the advisor's schedules
    get cheaper to maintain (narrower or no indexes), and the gap between
    the k-constrained and unconstrained designs narrows. *)

type point = {
  update_fraction : float;
  constrained_cost : float;
  unconstrained_cost : float;
  constrained_changes : int;
  distinct_indexes : int;  (** distinct indexes in the k=2 schedule *)
  empty_steps : int;  (** steps scheduled with no index at all *)
}

type result = { points : point list }

val run : ?fractions:float list -> Session.t -> result
(** Default fractions: 0, 0.1, 0.3, 0.5, 0.8. *)

val run_cells : ?fractions:float list -> ?cell_jobs:int -> Session.t -> result
(** {!run} as one {!Runner} cell per update fraction (each blends its own
    workload and builds its own problem over the pre-resolved session
    statistics).  Identical result — every reported field is
    deterministic. *)

val print : result -> unit
