module Parallel = Cddpd_util.Parallel
module Rng = Cddpd_util.Rng
module Obs = Cddpd_obs

let m_cells = Obs.Registry.counter "experiments.cells"
let m_cell_jobs = Obs.Registry.counter "experiments.cell_jobs_used"

type ctx = { label : string; rng : Rng.t }

type 'a cell = { label : string; body : ctx -> 'a }

let cell label body = { label; body }

(* cddpd-lint: allow domain-unsafe-state — set once by the CLI on the main domain before any fan-out; workers never touch it *)
let default = ref None

let default_cell_jobs () =
  match !default with
  | Some jobs -> jobs
  | None -> ( match Parallel.env_jobs () with Some jobs -> jobs | None -> Parallel.ncpu ())

let set_default_cell_jobs jobs =
  if jobs < 1 then invalid_arg "Runner.set_default_cell_jobs: jobs < 1";
  default := Some jobs

let run ?cell_jobs ?(seed = 0) cells =
  let cells = Array.of_list cells in
  let n = Array.length cells in
  if n = 0 then []
  else begin
    let requested =
      match cell_jobs with Some jobs -> max 1 jobs | None -> default_cell_jobs ()
    in
    let jobs = min requested n in
    Obs.Counter.add m_cells n;
    Obs.Counter.add m_cell_jobs jobs;
    (* Split one stream per cell up front, in declaration order, so cell
       i's stream depends only on [seed] and i — never on the domain
       count, chunking or join order. *)
    let master = Rng.create seed in
    let rngs = Array.init n (fun _ -> Rng.split master) in
    let run_cell i =
      let c = cells.(i) in
      Obs.Span.with_span "experiments.cell" (fun () ->
          c.body { label = c.label; rng = rngs.(i) })
    in
    let collect ~lo ~hi = List.init (hi - lo) (fun off -> run_cell (lo + off)) in
    if jobs = 1 then collect ~lo:0 ~hi:n
    else begin
      (* Cells are the unit of parallelism: pin the nested Parallel
         default to 1 for the duration of the fan-out so cell bodies
         (e.g. Problem.build inside a cell) don't oversubscribe the
         machine with nested domains.  Restored on the way out, including
         on exceptions (map_chunks joins every domain before re-raising). *)
      let saved = Parallel.default_jobs () in
      Parallel.set_default_jobs 1;
      Fun.protect
        ~finally:(fun () -> Parallel.set_default_jobs saved)
        (fun () -> List.concat (Parallel.map_chunks ~jobs ~n collect))
    end
  end
