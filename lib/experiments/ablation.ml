module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Problem = Cddpd_core.Problem
module Online_tuner = Cddpd_core.Online_tuner
module Text_table = Cddpd_util.Text_table

type entry = {
  method_label : string;
  k : int option;
  cost : float;
  changes : int;
  elapsed : float;
  optimality_gap : float;
}

type result = { entries : entry list; unconstrained_cost : float }

let constrained_methods =
  [ Solution.Kaware; Solution.Greedy_seq; Solution.Merging; Solution.Ranking; Solution.Hybrid ]

let default_ks = [ 0; 2; 6; 10 ]

(* One constrained-method measurement, with the optimality gap left as a
   placeholder (it needs the optimal cost at this k, patched in later —
   in the cell-based run the optimal solve is its own cell). *)
let method_measurement problem ~k method_name =
  match Optimizer.solve problem ~method_name ~k ~max_paths:200_000 () with
  | Ok s ->
      {
        method_label = Solution.method_to_string method_name;
        k = Some k;
        cost = s.Solution.cost;
        changes = s.Solution.changes;
        elapsed = s.Solution.elapsed;
        optimality_gap = infinity;
      }
  | Error Optimizer.Infeasible ->
      {
        method_label = Solution.method_to_string method_name;
        k = Some k;
        cost = infinity;
        changes = 0;
        elapsed = 0.0;
        optimality_gap = infinity;
      }
  | Error (Optimizer.Ranking_gave_up g) ->
      {
        method_label =
          Printf.sprintf "%s (gave up after %d paths, %s)"
            (Solution.method_to_string method_name)
            g.Cddpd_graph.Ranking.examined
            (Cddpd_graph.Ranking.reason_to_string g.Cddpd_graph.Ranking.reason);
        k = Some k;
        cost = infinity;
        changes = 0;
        elapsed = 0.0;
        optimality_gap = infinity;
      }

let patch_gap ~optimal_cost entry =
  if Float.equal entry.cost infinity then entry
  else
    { entry with optimality_gap = (entry.cost -. optimal_cost) /. optimal_cost }

let optimal_cost_at problem k =
  match Optimizer.solve problem ~method_name:Solution.Kaware ~k () with
  | Ok s -> s.Solution.cost
  | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) -> infinity

let unconstrained_entry (unconstrained : Solution.t) =
  {
    method_label = "unconstrained";
    k = None;
    cost = unconstrained.Solution.cost;
    changes = unconstrained.Solution.changes;
    elapsed = unconstrained.Solution.elapsed;
    optimality_gap = 0.0;
  }

let online_entry problem ~unconstrained_cost online_path =
  let cost = Problem.path_cost problem online_path in
  {
    method_label = "online tuner (reactive)";
    k = None;
    cost;
    changes = Problem.path_changes problem online_path;
    elapsed = 0.0;
    optimality_gap = (cost -. unconstrained_cost) /. unconstrained_cost;
  }

let run ?(ks = default_ks) (session : Session.t) =
  let problem = session.Session.problem_w1 in
  let unconstrained = Optimizer.unconstrained problem in
  let per_k =
    List.concat_map
      (fun k ->
        let optimal_cost = optimal_cost_at problem k in
        List.map
          (fun method_name ->
            patch_gap ~optimal_cost (method_measurement problem ~k method_name))
          constrained_methods)
      ks
  in
  (* The reactive online baseline has no k; report it once. *)
  let online =
    online_entry problem ~unconstrained_cost:unconstrained.Solution.cost
      (Online_tuner.run problem)
  in
  {
    entries = (unconstrained_entry unconstrained :: per_k) @ [ online ];
    unconstrained_cost = unconstrained.Solution.cost;
  }

(* Cell outputs are heterogeneous (a solution, an optimal cost, a method
   measurement, a tuner path), so cells return a small sum type and the
   join pass reassembles entries in exactly the order [run] reports. *)
type cell_out =
  | Out_unconstrained of Solution.t
  | Out_optimal_cost of float
  | Out_method of entry
  | Out_online of int array

let run_cells ?(ks = default_ks) ?cell_jobs (session : Session.t) =
  let problem = session.Session.problem_w1 in
  (* Force the memoized sequence graph on the main domain so solver cells
     share it read-only (Lazy.force is not safe to race). *)
  ignore (Problem.to_graph problem);
  let cells =
    Runner.cell "unconstrained" (fun _ctx ->
        Out_unconstrained (Optimizer.unconstrained problem))
    :: List.concat_map
         (fun k ->
           Runner.cell
             (Printf.sprintf "optimal/k=%d" k)
             (fun _ctx -> Out_optimal_cost (optimal_cost_at problem k))
           :: List.map
                (fun method_name ->
                  Runner.cell
                    (Printf.sprintf "%s/k=%d"
                       (Solution.method_to_string method_name)
                       k)
                    (fun _ctx -> Out_method (method_measurement problem ~k method_name)))
                constrained_methods)
         ks
    @ [
        Runner.cell "online-tuner" (fun _ctx -> Out_online (Online_tuner.run problem));
      ]
  in
  let outs = Runner.run ?cell_jobs ~seed:session.Session.config.Setup.seed cells in
  let unconstrained, rest =
    match outs with
    | Out_unconstrained s :: rest -> (s, rest)
    | _ -> failwith "Ablation: unexpected cell output"
  in
  let rec group rest =
    match rest with
    | [ Out_online path ] ->
        [ online_entry problem ~unconstrained_cost:unconstrained.Solution.cost path ]
    | Out_optimal_cost optimal_cost :: rest ->
        let n = List.length constrained_methods in
        let measured = List.filteri (fun i _ -> i < n) rest in
        let entries =
          List.map
            (function
              | Out_method e -> patch_gap ~optimal_cost e
              | _ -> failwith "Ablation: unexpected cell output")
            measured
        in
        entries @ group (List.filteri (fun i _ -> i >= n) rest)
    | _ -> failwith "Ablation: unexpected cell output"
  in
  {
    entries = unconstrained_entry unconstrained :: group rest;
    unconstrained_cost = unconstrained.Solution.cost;
  }

let print result =
  print_endline "Ablation: all solvers on the W1 instance";
  let table =
    Text_table.create
      [
        ("method", Text_table.Left);
        ("k", Text_table.Right);
        ("cost", Text_table.Right);
        ("changes", Text_table.Right);
        ("gap vs optimal", Text_table.Right);
        ("time (ms)", Text_table.Right);
      ]
  in
  List.iter
    (fun e ->
      Text_table.add_row table
        [
          e.method_label;
          (match e.k with None -> "-" | Some k -> string_of_int k);
          (if Float.equal e.cost infinity then "infeasible" else Printf.sprintf "%.0f" e.cost);
          string_of_int e.changes;
          (if Float.equal e.optimality_gap infinity then "-"
           else Printf.sprintf "%+.2f%%" (e.optimality_gap *. 100.));
          Printf.sprintf "%.3f" (e.elapsed *. 1e3);
        ])
    result.entries;
  Text_table.print table
