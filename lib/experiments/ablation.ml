module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Problem = Cddpd_core.Problem
module Online_tuner = Cddpd_core.Online_tuner
module Text_table = Cddpd_util.Text_table

type entry = {
  method_label : string;
  k : int option;
  cost : float;
  changes : int;
  elapsed : float;
  optimality_gap : float;
}

type result = { entries : entry list; unconstrained_cost : float }

let constrained_methods =
  [ Solution.Kaware; Solution.Greedy_seq; Solution.Merging; Solution.Ranking; Solution.Hybrid ]

let run ?(ks = [ 0; 2; 6; 10 ]) (session : Session.t) =
  let problem = session.Session.problem_w1 in
  let unconstrained = Optimizer.unconstrained problem in
  let entries = ref [] in
  let add entry = entries := entry :: !entries in
  add
    {
      method_label = "unconstrained";
      k = None;
      cost = unconstrained.Solution.cost;
      changes = unconstrained.Solution.changes;
      elapsed = unconstrained.Solution.elapsed;
      optimality_gap = 0.0;
    };
  List.iter
    (fun k ->
      let optimal_cost =
        match Optimizer.solve problem ~method_name:Solution.Kaware ~k () with
        | Ok s -> s.Solution.cost
        | Error (Optimizer.Infeasible | Optimizer.Ranking_gave_up _) -> infinity
      in
      List.iter
        (fun method_name ->
          match
            Optimizer.solve problem ~method_name ~k ~max_paths:200_000 ()
          with
          | Ok s ->
              add
                {
                  method_label = Solution.method_to_string method_name;
                  k = Some k;
                  cost = s.Solution.cost;
                  changes = s.Solution.changes;
                  elapsed = s.Solution.elapsed;
                  optimality_gap = (s.Solution.cost -. optimal_cost) /. optimal_cost;
                }
          | Error Optimizer.Infeasible ->
              add
                {
                  method_label = Solution.method_to_string method_name;
                  k = Some k;
                  cost = infinity;
                  changes = 0;
                  elapsed = 0.0;
                  optimality_gap = infinity;
                }
          | Error (Optimizer.Ranking_gave_up g) ->
              add
                {
                  method_label =
                    Printf.sprintf "%s (gave up after %d paths, %s)"
                      (Solution.method_to_string method_name)
                      g.Cddpd_graph.Ranking.examined
                      (Cddpd_graph.Ranking.reason_to_string
                         g.Cddpd_graph.Ranking.reason);
                  k = Some k;
                  cost = infinity;
                  changes = 0;
                  elapsed = 0.0;
                  optimality_gap = infinity;
                })
        constrained_methods)
    ks;
  (* The reactive online baseline has no k; report it once. *)
  let online_path = Online_tuner.run problem in
  add
    {
      method_label = "online tuner (reactive)";
      k = None;
      cost = Problem.path_cost problem online_path;
      changes = Problem.path_changes problem online_path;
      elapsed = 0.0;
      optimality_gap =
        (Problem.path_cost problem online_path -. unconstrained.Solution.cost)
        /. unconstrained.Solution.cost;
    };
  { entries = List.rev !entries; unconstrained_cost = unconstrained.Solution.cost }

let print result =
  print_endline "Ablation: all solvers on the W1 instance";
  let table =
    Text_table.create
      [
        ("method", Text_table.Left);
        ("k", Text_table.Right);
        ("cost", Text_table.Right);
        ("changes", Text_table.Right);
        ("gap vs optimal", Text_table.Right);
        ("time (ms)", Text_table.Right);
      ]
  in
  List.iter
    (fun e ->
      Text_table.add_row table
        [
          e.method_label;
          (match e.k with None -> "-" | Some k -> string_of_int k);
          (if e.cost = infinity then "infeasible" else Printf.sprintf "%.0f" e.cost);
          string_of_int e.changes;
          (if e.optimality_gap = infinity then "-"
           else Printf.sprintf "%+.2f%%" (e.optimality_gap *. 100.));
          Printf.sprintf "%.3f" (e.elapsed *. 1e3);
        ])
    result.entries;
  Text_table.print table
