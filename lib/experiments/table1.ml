module Mix = Cddpd_workload.Mix
module Rng = Cddpd_util.Rng
module Text_table = Cddpd_util.Text_table

type result = {
  mixes : (string * (string * float) list) list;
  observed : (string * (string * float) list) list;
  max_deviation : float;
}

let columns = [ "a"; "b"; "c"; "d" ]

let observe mix ~sample_size ~seed =
  let rng = Rng.create seed in
  let counts = Hashtbl.create 4 in
  for _ = 1 to sample_size do
    let column = Mix.sample_column mix rng in
    Hashtbl.replace counts column
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts column))
  done;
  List.map
    (fun c ->
      ( c,
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts c))
        /. float_of_int sample_size ))
    columns

let run ?(sample_size = 20_000) ?(seed = 7) () =
  let mixes = [ Mix.mix_a; Mix.mix_b; Mix.mix_c; Mix.mix_d ] in
  let specified = List.map (fun m -> (Mix.name m, Mix.weights m)) mixes in
  let observed =
    List.map (fun m -> (Mix.name m, observe m ~sample_size ~seed)) mixes
  in
  let max_deviation =
    List.fold_left2
      (fun acc (_, spec) (_, obs) ->
        List.fold_left2
          (fun acc (_, w) (_, f) -> Float.max acc (Float.abs (w -. f)))
          acc spec obs)
      0.0 specified observed
  in
  { mixes = specified; observed; max_deviation }

let print result =
  print_endline "Table 1: Workload Query Mixes (specified / observed)";
  let table =
    Text_table.create
      (( "Query Mix", Text_table.Left )
      :: List.map (fun c -> (c, Text_table.Right)) columns)
  in
  List.iter2
    (fun (name, spec) (_, obs) ->
      Text_table.add_row table
        (name
        :: List.map2
             (fun (_, w) (_, f) -> Printf.sprintf "%2.0f%% / %4.1f%%" (w *. 100.) (f *. 100.))
             spec obs))
    result.mixes result.observed;
  Text_table.print table;
  Printf.printf "max |observed - specified| = %.2f%%\n" (result.max_deviation *. 100.)
