module Design = Cddpd_catalog.Design
module Database = Cddpd_engine.Database
module Solution = Cddpd_core.Solution
module Simulator = Cddpd_core.Simulator
module Text_table = Cddpd_util.Text_table

type measurement = {
  workload : string;
  unconstrained_io : int;
  constrained_io : int;
  relative_unconstrained : float;
  relative_constrained : float;
}

type result = { measurements : measurement list; baseline_io : int }

let replay (session : Session.t) steps schedule =
  let db = session.Session.db in
  (* Leave the previous run's design behind so each replay starts from the
     paper's empty initial configuration. *)
  Database.migrate_to db Design.empty;
  let report = Simulator.run db ~steps ~schedule in
  report.Simulator.total_logical_io

let workloads (session : Session.t) =
  [
    ("W1", session.Session.steps_w1);
    ("W2", session.Session.steps_w2);
    ("W3", session.Session.steps_w3);
  ]

let assemble raw =
  let baseline_io =
    match raw with
    | ("W1", io, _) :: _ -> io
    | _ -> failwith "Figure3: W1 missing"
  in
  let measurements =
    List.map
      (fun (workload, unconstrained_io, constrained_io) ->
        {
          workload;
          unconstrained_io;
          constrained_io;
          relative_unconstrained =
            float_of_int unconstrained_io /. float_of_int baseline_io;
          relative_constrained = float_of_int constrained_io /. float_of_int baseline_io;
        })
      raw
  in
  { measurements; baseline_io }

let run (session : Session.t) =
  let table2 = Table2.run session in
  let schedule_unconstrained = table2.Table2.schedule_unconstrained in
  let schedule_k2 = table2.Table2.schedule_k2 in
  let raw =
    List.map
      (fun (name, steps) ->
        let unconstrained_io = replay session steps schedule_unconstrained in
        let constrained_io = replay session steps schedule_k2 in
        (name, unconstrained_io, constrained_io))
      (workloads session)
  in
  assemble raw

(* A replay cell builds its own database from the session's config (a
   byte-identical replica of the session's — same data seed) and replays
   one (workload, schedule) pair on it.  Logical I/O counts one access per
   fetch whether it hits or misses, so the fresh pool's different
   residency cannot change the reported numbers: run_cells ≡ run. *)
let replay_fresh config steps schedule =
  let db = Setup.make_database config in
  let report = Simulator.run db ~steps ~schedule in
  report.Simulator.total_logical_io

let run_cells ?cell_jobs (session : Session.t) =
  (* The two design schedules are a shared prerequisite of every replay
     cell; compute them once on the main domain. *)
  let table2 = Table2.run session in
  let schedule_unconstrained = table2.Table2.schedule_unconstrained in
  let schedule_k2 = table2.Table2.schedule_k2 in
  let config = session.Session.config in
  let cells =
    List.concat_map
      (fun (name, steps) ->
        [
          Runner.cell (name ^ "/unconstrained") (fun _ctx ->
              replay_fresh config steps schedule_unconstrained);
          Runner.cell (name ^ "/k2") (fun _ctx -> replay_fresh config steps schedule_k2);
        ])
      (workloads session)
  in
  let ios = Runner.run ?cell_jobs ~seed:config.Setup.seed cells in
  let raw =
    match ios with
    | [ w1u; w1c; w2u; w2c; w3u; w3c ] ->
        [ ("W1", w1u, w1c); ("W2", w2u, w2c); ("W3", w3u, w3c) ]
    | _ -> failwith "Figure3: unexpected cell count"
  in
  assemble raw

let print result =
  print_endline
    "Figure 3: Execution cost relative to W1 under the unconstrained design";
  let table =
    Text_table.create
      [
        ("workload", Text_table.Left);
        ("unconstrained design", Text_table.Right);
        ("constrained design (k=2)", Text_table.Right);
        ("page accesses (unc)", Text_table.Right);
        ("page accesses (k=2)", Text_table.Right);
      ]
  in
  List.iter
    (fun m ->
      Text_table.add_row table
        [
          m.workload;
          Printf.sprintf "%.0f%%" (m.relative_unconstrained *. 100.);
          Printf.sprintf "%.0f%%" (m.relative_constrained *. 100.);
          string_of_int m.unconstrained_io;
          string_of_int m.constrained_io;
        ])
    result.measurements;
  Text_table.print table
