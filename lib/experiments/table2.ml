module Design = Cddpd_catalog.Design
module Solution = Cddpd_core.Solution
module Optimizer = Cddpd_core.Optimizer
module Workloads = Cddpd_workload.Workloads
module Text_table = Cddpd_util.Text_table

type row = {
  query_range : string;
  w1_mix : string;
  design_unconstrained : string;
  design_k2 : string;
  w2_mix : string;
  w3_mix : string;
}

type result = {
  rows : row list;
  unconstrained : Solution.t;
  constrained : Solution.t;
  schedule_unconstrained : Design.t array;
  schedule_k2 : Design.t array;
}

let solve_exn problem ~method_name ?k () =
  match Optimizer.solve problem ~method_name ?k () with
  | Ok solution -> solution
  | Error Optimizer.Infeasible -> failwith "Table2: infeasible"
  | Error (Optimizer.Ranking_gave_up _) -> failwith "Table2: ranking gave up"

let assemble (session : Session.t) unconstrained constrained =
  let problem = session.Session.problem_w1 in
  let schedule_unconstrained = Solution.schedule problem unconstrained in
  let schedule_k2 = Solution.schedule problem constrained in
  let per_segment =
    int_of_float
      (Float.round (500. *. session.Session.config.Setup.scale))
  in
  let n = Array.length schedule_unconstrained in
  let rows =
    List.init n (fun s ->
        {
          query_range =
            Printf.sprintf "%d-%d" ((s * per_segment) + 1) ((s + 1) * per_segment);
          w1_mix = String.make 1 Workloads.letters_w1.[s];
          design_unconstrained = Design.name schedule_unconstrained.(s);
          design_k2 = Design.name schedule_k2.(s);
          w2_mix = String.make 1 Workloads.letters_w2.[s];
          w3_mix = String.make 1 Workloads.letters_w3.[s];
        })
  in
  { rows; unconstrained; constrained; schedule_unconstrained; schedule_k2 }

let run (session : Session.t) =
  let problem = session.Session.problem_w1 in
  let unconstrained = solve_exn problem ~method_name:Solution.Unconstrained () in
  let constrained =
    solve_exn problem ~method_name:Solution.Kaware ~k:Workloads.major_shift_count ()
  in
  assemble session unconstrained constrained

let run_cells ?cell_jobs (session : Session.t) =
  let problem = session.Session.problem_w1 in
  (* Force the memoized sequence graph on the main domain so solver cells
     share it read-only (Lazy.force is not safe to race). *)
  ignore (Cddpd_core.Problem.to_graph problem);
  let solutions =
    Runner.run ?cell_jobs ~seed:session.Session.config.Setup.seed
      [
        Runner.cell "unconstrained" (fun _ctx ->
            solve_exn problem ~method_name:Solution.Unconstrained ());
        Runner.cell "kaware/k2" (fun _ctx ->
            solve_exn problem ~method_name:Solution.Kaware
              ~k:Workloads.major_shift_count ());
      ]
  in
  match solutions with
  | [ unconstrained; constrained ] -> assemble session unconstrained constrained
  | _ -> failwith "Table2: unexpected cell count"

let print result =
  print_endline "Table 2: Dynamic Workloads and Physical Designs (designs from W1)";
  let table =
    Text_table.create
      [
        ("query number", Text_table.Left);
        ("W1", Text_table.Left);
        ("design k=inf", Text_table.Left);
        ("design k=2", Text_table.Left);
        ("W2", Text_table.Left);
        ("W3", Text_table.Left);
      ]
  in
  List.iter
    (fun row ->
      Text_table.add_row table
        [
          row.query_range;
          row.w1_mix;
          row.design_unconstrained;
          row.design_k2;
          row.w2_mix;
          row.w3_mix;
        ])
    result.rows;
  Text_table.print table;
  Format.printf "unconstrained: %a@." Solution.pp result.unconstrained;
  Format.printf "constrained:   %a@." Solution.pp result.constrained
