type value = Cddpd_storage.Tuple.value

type cmp = Eq | Lt | Le | Gt | Ge

type predicate =
  | Cmp of { column : string; op : cmp; value : value }
  | Between of { column : string; low : value; high : value }

type projection = Star | Columns of string list

type aggregate = Count_star | Sum of string

type select = {
  projection : projection;
  table : string;
  where : predicate list;
}

type statement =
  | Select of select
  | Select_agg of {
      table : string;
      group_by : string;
      aggregate : aggregate;
      where : predicate list;
    }
  | Insert of { table : string; values : value list }
  | Delete of { table : string; where : predicate list }
  | Update of {
      table : string;
      assignments : (string * value) list;
      where : predicate list;
    }

let equal_statement (a : statement) (b : statement) = a = b

let eq_columns select =
  List.filter_map
    (fun pred ->
      match pred with
      | Cmp { column; op = Eq; value } -> Some (column, value)
      | Cmp _ | Between _ -> None)
    select.where

let range_columns select =
  List.filter_map
    (fun pred ->
      match pred with
      | Cmp { op = Eq; _ } -> None
      | Cmp { column; _ } | Between { column; _ } -> Some column)
    select.where

let predicate_column pred =
  match pred with Cmp { column; _ } | Between { column; _ } -> column

let dedup columns =
  List.fold_left
    (fun acc c -> if List.mem c acc then acc else c :: acc)
    [] columns
  |> List.rev

let referenced_columns statement =
  match statement with
  | Insert _ -> []
  | Select { projection; where; _ } ->
      let projected =
        match projection with Star -> [] | Columns cs -> cs
      in
      dedup (projected @ List.map predicate_column where)
  | Select_agg { group_by; aggregate; where; _ } ->
      let agg_cols = match aggregate with Count_star -> [] | Sum c -> [ c ] in
      dedup ((group_by :: agg_cols) @ List.map predicate_column where)
  | Delete { where; _ } -> dedup (List.map predicate_column where)
  | Update { assignments; where; _ } ->
      dedup (List.map fst assignments @ List.map predicate_column where)

let where_of statement =
  match statement with
  | Select { where; _ }
  | Select_agg { where; _ }
  | Delete { where; _ }
  | Update { where; _ } ->
      where
  | Insert _ -> []

let is_read_only statement =
  match statement with
  | Select _ | Select_agg _ -> true
  | Insert _ | Delete _ | Update _ -> false
