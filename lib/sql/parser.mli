(** Recursive-descent parser for the SQL subset.

    Grammar:
    {v
    statement  ::= select | insert | delete | update
    select     ::= SELECT projection FROM ident [WHERE conjunction] [';']
    projection ::= '*' | ident (',' ident)*
    conjunction::= predicate (AND predicate)*
    predicate  ::= ident cmp literal
                 | ident BETWEEN literal AND literal
    cmp        ::= '=' | '<' | '<=' | '>' | '>='
    insert     ::= INSERT INTO ident VALUES '(' literal (',' literal)* ')' [';']
    delete     ::= DELETE FROM ident [WHERE conjunction] [';']
    update     ::= UPDATE ident SET ident '=' literal (',' ident '=' literal)*
                   [WHERE conjunction] [';']
    literal    ::= integer | string
    v} *)

exception Parse_error of string

val parse : string -> (Ast.statement, string) result
(** Parse one statement. *)

val parse_exn : string -> Ast.statement
(** Like {!parse} but raises {!Parse_error}. *)

val parse_cached : Template.t -> string -> (Template.entry, string) result
(** Like {!parse}, but answered from [cache] when possible: a repeated
    text returns its cached entry for one string hash, and a fresh text
    whose token shape is cached is materialised by rebinding literals into
    the cached skeleton.  The returned statement (and any error message)
    is bit-identical to a fresh {!parse} of the same input; only failed
    parses are never cached. *)
