type token =
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_between
  | Kw_insert
  | Kw_into
  | Kw_values
  | Kw_delete
  | Kw_update
  | Kw_set
  | Kw_group
  | Kw_by
  | Kw_count
  | Kw_sum
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Comma
  | Lparen
  | Rparen
  | Star
  | Op_eq
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge
  | Semicolon
  | Eof

exception Lex_error of { position : int; message : string }

let error position message = raise (Lex_error { position; message })

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "select" -> Some Kw_select
  | "from" -> Some Kw_from
  | "where" -> Some Kw_where
  | "and" -> Some Kw_and
  | "between" -> Some Kw_between
  | "insert" -> Some Kw_insert
  | "into" -> Some Kw_into
  | "values" -> Some Kw_values
  | "delete" -> Some Kw_delete
  | "update" -> Some Kw_update
  | "set" -> Some Kw_set
  | "group" -> Some Kw_group
  | "by" -> Some Kw_by
  | "count" -> Some Kw_count
  | "sum" -> Some Kw_sum
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  (* One scratch buffer shared by every string literal in the statement:
     literals are lexed strictly one at a time, so reuse is safe and saves
     an allocation per literal on the serve ingest path. *)
  let scratch = Buffer.create 32 in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char input.[!pos] do
      advance ()
    done;
    let word = String.sub input start (!pos - start) in
    match keyword_of_string word with
    | Some kw -> emit kw
    | None -> emit (Ident (String.lowercase_ascii word))
  in
  let lex_int () =
    let start = !pos in
    if !pos < n && input.[!pos] = '-' then advance ();
    while !pos < n && is_digit input.[!pos] do
      advance ()
    done;
    let len = !pos - start in
    (* Unsigned literals of at most 18 digits cannot overflow a 63-bit
       int, so accumulate them in place instead of allocating a substring
       for int_of_string. *)
    if len > 0 && len <= 18 && input.[start] <> '-' then begin
      let v = ref 0 in
      for i = start to !pos - 1 do
        v := (!v * 10) + (Char.code input.[i] - Char.code '0')
      done;
      emit (Int_lit !v)
    end
    else
      let text = String.sub input start len in
      match int_of_string_opt text with
      | Some v -> emit (Int_lit v)
      | None -> error start (Printf.sprintf "invalid integer literal %S" text)
  in
  let lex_string () =
    let start = !pos in
    advance () (* opening quote *);
    Buffer.clear scratch;
    let rec go () =
      if !pos >= n then error start "unterminated string literal"
      else
        match input.[!pos] with
        | '\'' ->
            advance ();
            if !pos < n && input.[!pos] = '\'' then begin
              Buffer.add_char scratch '\'';
              advance ();
              go ()
            end
        | c ->
            Buffer.add_char scratch c;
            advance ();
            go ()
    in
    go ();
    emit (Str_lit (Buffer.contents scratch))
  in
  while !pos < n do
    match peek () with
    | None -> ()
    | Some c -> (
        match c with
        | ' ' | '\t' | '\n' | '\r' -> advance ()
        | ',' -> advance (); emit Comma
        | '(' -> advance (); emit Lparen
        | ')' -> advance (); emit Rparen
        | '*' -> advance (); emit Star
        | ';' -> advance (); emit Semicolon
        | '=' -> advance (); emit Op_eq
        | '<' ->
            advance ();
            if peek () = Some '=' then begin advance (); emit Op_le end
            else emit Op_lt
        | '>' ->
            advance ();
            if peek () = Some '=' then begin advance (); emit Op_ge end
            else emit Op_gt
        | '\'' -> lex_string ()
        | '-' -> lex_int ()
        | c when is_digit c -> lex_int ()
        | c when is_ident_start c -> lex_ident ()
        | c -> error !pos (Printf.sprintf "unexpected character %C" c))
  done;
  emit Eof;
  List.rev !tokens

let token_to_string token =
  match token with
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_and -> "AND"
  | Kw_between -> "BETWEEN"
  | Kw_insert -> "INSERT"
  | Kw_into -> "INTO"
  | Kw_values -> "VALUES"
  | Kw_delete -> "DELETE"
  | Kw_update -> "UPDATE"
  | Kw_set -> "SET"
  | Kw_group -> "GROUP"
  | Kw_by -> "BY"
  | Kw_count -> "COUNT"
  | Kw_sum -> "SUM"
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit v -> Printf.sprintf "integer %d" v
  | Str_lit s -> Printf.sprintf "string %S" s
  | Comma -> "','"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Star -> "'*'"
  | Op_eq -> "'='"
  | Op_lt -> "'<'"
  | Op_le -> "'<='"
  | Op_gt -> "'>'"
  | Op_ge -> "'>='"
  | Semicolon -> "';'"
  | Eof -> "end of input"
