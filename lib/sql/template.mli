(** Statement-template cache backing {!Parser.parse_cached}.

    Two levels, both bit-identical to a fresh parse:

    - an {e exact} table keyed on raw statement text, returning the parsed
      statement (plus per-text memo slots) for one string hash;
    - a {e template} table keyed on the statement's token shape (literals
      replaced by slots), whose parsed skeleton is materialised for a fresh
      text by rebinding literals positionally — no parsing.

    The cache is single-domain (serve's ingest loop); it is not
    thread-safe. *)

type entry = {
  statement : Ast.statement;  (** parse result for the cached text *)
  mutable cost_tag : (int * string) option;
      (** caller-owned memo slot: serve stamps it with
          [(statistics generation, cost-identity key)] so a repeated text
          skips re-keying while the snapshot is unchanged *)
  mutable validated : bool;
      (** set by the caller once the statement has passed semantic checks
          against the live schema; sound as long as the schema is fixed,
          which serve guarantees *)
}

type stats = {
  exact_hits : int;  (** texts answered from the exact table *)
  template_hits : int;  (** texts answered by rebinding a skeleton *)
  misses : int;  (** texts that needed a real parse *)
  templates : int;  (** distinct shapes currently cached *)
  entries : int;  (** distinct texts currently cached *)
}

type t

val create : ?capacity:int -> unit -> t
(** [create ()] makes an empty cache.  [capacity] bounds both tables;
    overflow resets the table wholesale (entries are pure memos). *)

val stats : t -> stats

val find_exact : t -> string -> entry option
(** Exact-text lookup; counts a hit when it succeeds. *)

val add_exact : t -> string -> Ast.statement -> entry
(** Insert the parse result for [text] and return its (fresh) entry. *)

val shape_of_tokens : Lexer.token list -> string * Cddpd_storage.Tuple.value list
(** Token shape with literals replaced by slots, plus the literals in
    source order.  Shape-equal token lists parse to statements that differ
    only in literal values. *)

val rebind : Ast.statement -> Cddpd_storage.Tuple.value list -> Ast.statement option
(** [rebind skeleton literals] substitutes [literals] into [skeleton] in
    parser consumption order.  [None] if the arity does not match (cannot
    happen for a shape-equal text; callers fall back to a real parse). *)

val materialize :
  t ->
  shape:string ->
  literals:Cddpd_storage.Tuple.value list ->
  parse:(unit -> Ast.statement) ->
  Ast.statement
(** Produce the statement for a text with the given [shape]: rebind a
    cached skeleton when one exists, otherwise call [parse] and cache the
    result as the shape's skeleton.  Counts template hits and misses. *)
