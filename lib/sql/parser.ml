module Tuple = Cddpd_storage.Tuple

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st =
  match st.tokens with
  | [] -> Lexer.Eof
  | tok :: _ -> tok

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else fail "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string got)

let parse_ident st =
  match peek st with
  | Lexer.Ident name ->
      advance st;
      name
  | tok -> fail "expected an identifier but found %s" (Lexer.token_to_string tok)

let parse_literal st =
  match peek st with
  | Lexer.Int_lit v ->
      advance st;
      Tuple.Int v
  | Lexer.Str_lit s ->
      advance st;
      Tuple.Text s
  | tok -> fail "expected a literal but found %s" (Lexer.token_to_string tok)

let parse_cmp st =
  match peek st with
  | Lexer.Op_eq -> advance st; Ast.Eq
  | Lexer.Op_lt -> advance st; Ast.Lt
  | Lexer.Op_le -> advance st; Ast.Le
  | Lexer.Op_gt -> advance st; Ast.Gt
  | Lexer.Op_ge -> advance st; Ast.Ge
  | tok -> fail "expected a comparison operator but found %s" (Lexer.token_to_string tok)

let parse_predicate st =
  let column = parse_ident st in
  match peek st with
  | Lexer.Kw_between ->
      advance st;
      let low = parse_literal st in
      expect st Lexer.Kw_and;
      let high = parse_literal st in
      Ast.Between { column; low; high }
  | _ ->
      let op = parse_cmp st in
      let value = parse_literal st in
      Ast.Cmp { column; op; value }

let parse_conjunction st =
  let rec go acc =
    let pred = parse_predicate st in
    match peek st with
    | Lexer.Kw_and ->
        advance st;
        go (pred :: acc)
    | _ -> List.rev (pred :: acc)
  in
  go []

let parse_optional_where st =
  match peek st with
  | Lexer.Kw_where ->
      advance st;
      parse_conjunction st
  | _ -> []

(* One element of a select list: a column or an aggregate call. *)
let parse_select_element st =
  match peek st with
  | Lexer.Kw_count ->
      advance st;
      expect st Lexer.Lparen;
      expect st Lexer.Star;
      expect st Lexer.Rparen;
      `Agg Ast.Count_star
  | Lexer.Kw_sum ->
      advance st;
      expect st Lexer.Lparen;
      let column = parse_ident st in
      expect st Lexer.Rparen;
      `Agg (Ast.Sum column)
  | _ -> `Column (parse_ident st)

let parse_select st =
  expect st Lexer.Kw_select;
  let projection =
    match peek st with
    | Lexer.Star ->
        advance st;
        `Star
    | _ ->
        let rec go acc =
          let element = parse_select_element st in
          match peek st with
          | Lexer.Comma ->
              advance st;
              go (element :: acc)
          | _ -> List.rev (element :: acc)
        in
        `Elements (go [])
  in
  expect st Lexer.Kw_from;
  let table = parse_ident st in
  let where = parse_optional_where st in
  let group_by =
    match peek st with
    | Lexer.Kw_group ->
        advance st;
        expect st Lexer.Kw_by;
        Some (parse_ident st)
    | _ -> None
  in
  match (projection, group_by) with
  | `Star, None -> Ast.Select { projection = Ast.Star; table; where }
  | `Elements elements, None ->
      let columns =
        List.map
          (fun element ->
            match element with
            | `Column c -> c
            | `Agg _ -> fail "aggregate requires GROUP BY")
          elements
      in
      Ast.Select { projection = Ast.Columns columns; table; where }
  | `Elements [ `Column g; `Agg aggregate ], Some group ->
      if not (String.equal g group) then
        fail "GROUP BY column %s does not match selected column %s" group g;
      Ast.Select_agg { table; group_by = group; aggregate; where }
  | `Elements _, Some _ ->
      fail "aggregate selects must have the form SELECT g, AGG(...) ... GROUP BY g"
  | `Star, Some _ -> fail "GROUP BY requires an explicit select list"

let parse_insert st =
  expect st Lexer.Kw_insert;
  expect st Lexer.Kw_into;
  let table = parse_ident st in
  expect st Lexer.Kw_values;
  expect st Lexer.Lparen;
  let rec go acc =
    let v = parse_literal st in
    match peek st with
    | Lexer.Comma ->
        advance st;
        go (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  let values = go [] in
  expect st Lexer.Rparen;
  Ast.Insert { table; values }

let parse_delete st =
  expect st Lexer.Kw_delete;
  expect st Lexer.Kw_from;
  let table = parse_ident st in
  let where = parse_optional_where st in
  Ast.Delete { table; where }

let parse_update st =
  expect st Lexer.Kw_update;
  let table = parse_ident st in
  expect st Lexer.Kw_set;
  let rec go acc =
    let column = parse_ident st in
    expect st Lexer.Op_eq;
    let value = parse_literal st in
    match peek st with
    | Lexer.Comma ->
        advance st;
        go ((column, value) :: acc)
    | _ -> List.rev ((column, value) :: acc)
  in
  let assignments = go [] in
  let where = parse_optional_where st in
  Ast.Update { table; assignments; where }

let parse_statement st =
  let statement =
    match peek st with
    | Lexer.Kw_select -> parse_select st
    | Lexer.Kw_insert -> parse_insert st
    | Lexer.Kw_delete -> parse_delete st
    | Lexer.Kw_update -> parse_update st
    | tok ->
        fail "expected SELECT, INSERT, DELETE or UPDATE but found %s"
          (Lexer.token_to_string tok)
  in
  (match peek st with
  | Lexer.Semicolon -> advance st
  | _ -> ());
  expect st Lexer.Eof;
  statement

let parse_exn input =
  let tokens =
    try Lexer.tokenize input
    with Lexer.Lex_error { position; message } ->
      fail "lexical error at offset %d: %s" position message
  in
  parse_statement { tokens }

let parse input =
  match parse_exn input with
  | statement -> Ok statement
  | exception Parse_error message -> Error message

let parse_cached cache input =
  match Template.find_exact cache input with
  | Some entry -> Ok entry
  | None -> (
      match
        let tokens = Lexer.tokenize input in
        let shape, literals = Template.shape_of_tokens tokens in
        let statement =
          Template.materialize cache ~shape ~literals ~parse:(fun () ->
              parse_statement { tokens })
        in
        Template.add_exact cache input statement
      with
      | entry -> Ok entry
      | exception Parse_error message -> Error message
      | exception Lexer.Lex_error { position; message } ->
          Error (Printf.sprintf "lexical error at offset %d: %s" position message))
