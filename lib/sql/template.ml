(* Statement-template cache: the parsing half of the serve ingest fast path.

   Production traces are overwhelmingly a small set of repeated statement
   *texts* drawn from an even smaller set of statement *shapes* — the same
   SELECT with different literals (the observation template-normalized
   workload collectors such as AIM build on).  The cache exploits both
   levels:

   - an exact table maps raw statement text to its parsed [Ast.statement],
     so a repeated text costs one string hash;
   - a template table maps the statement's token *shape* (literals replaced
     by slots) to a parsed skeleton, so a fresh text with a known shape is
     materialised by rebinding literals positionally instead of parsing.

   Both levels are bit-identical to a fresh parse: the lexer lowercases
   identifiers and canonicalises keywords, so shape-equal token lists parse
   to statements that differ only in literal values, and [rebind]
   substitutes literals in the exact source order the parser consumes
   them.  Any arity surprise falls back to the real parser. *)

module Tuple = Cddpd_storage.Tuple
module Obs = Cddpd_obs

type entry = {
  statement : Ast.statement;
  mutable cost_tag : (int * string) option;
  mutable validated : bool;
}

type stats = {
  exact_hits : int;
  template_hits : int;
  misses : int;
  templates : int;
  entries : int;
}

type t = {
  exact : (string, entry) Hashtbl.t;
  templates : (string, Ast.statement) Hashtbl.t;
  capacity : int;
  mutable exact_hits : int;
  mutable template_hits : int;
  mutable misses : int;
}

let m_hits = Obs.Registry.counter "sql.template_cache.hits"
let m_misses = Obs.Registry.counter "sql.template_cache.misses"
let m_templates = Obs.Registry.counter "sql.template_cache.templates"

let default_capacity = 8192

let create ?(capacity = default_capacity) () =
  {
    exact = Hashtbl.create 256;
    templates = Hashtbl.create 64;
    capacity = max 16 capacity;
    exact_hits = 0;
    template_hits = 0;
    misses = 0;
  }

let stats t =
  {
    exact_hits = t.exact_hits;
    template_hits = t.template_hits;
    misses = t.misses;
    templates = Hashtbl.length t.templates;
    entries = Hashtbl.length t.exact;
  }

let find_exact t text =
  match Hashtbl.find_opt t.exact text with
  | Some entry ->
      t.exact_hits <- t.exact_hits + 1;
      Obs.Counter.incr m_hits;
      Some entry
  | None -> None

(* The shape marker '?' is shared by int and string literals: the grammar
   accepts either wherever a literal is allowed, so two texts with the same
   shape string parse to statements that differ only in literal values.
   '\x1f' separates tokens; it cannot appear inside a rendered token
   (identifiers are lexed from [A-Za-z0-9_]), so the encoding is injective. *)
let shape_of_tokens tokens =
  let buf = Buffer.create 64 in
  let literals = ref [] in
  List.iter
    (fun token ->
      (match token with
      | Lexer.Int_lit v ->
          literals := Tuple.Int v :: !literals;
          Buffer.add_char buf '?'
      | Lexer.Str_lit s ->
          literals := Tuple.Text s :: !literals;
          Buffer.add_char buf '?'
      | other -> Buffer.add_string buf (Lexer.token_to_string other));
      Buffer.add_char buf '\x1f')
    tokens;
  (Buffer.contents buf, List.rev !literals)

exception Rebind_mismatch

(* Literals are substituted in the exact order the parser consumes them:
   WHERE predicates textually left to right with BETWEEN low before high,
   INSERT values left to right, UPDATE assignments before its WHERE clause.
   Evaluation order is forced with explicit [let]s and hand-rolled
   recursion because OCaml leaves constructor-argument and [List.map]
   application order unspecified. *)
let rebind skeleton literals =
  let literals = Array.of_list literals in
  let n = Array.length literals in
  let next = ref 0 in
  let take () =
    if !next >= n then raise Rebind_mismatch
    else begin
      let v = literals.(!next) in
      incr next;
      v
    end
  in
  let rebind_predicate pred =
    match pred with
    | Ast.Cmp { column; op; value = _ } ->
        let value = take () in
        Ast.Cmp { column; op; value }
    | Ast.Between { column; low = _; high = _ } ->
        let low = take () in
        let high = take () in
        Ast.Between { column; low; high }
  in
  let rec rebind_preds preds =
    match preds with
    | [] -> []
    | pred :: rest ->
        let pred = rebind_predicate pred in
        let rest = rebind_preds rest in
        pred :: rest
  in
  let rec rebind_assignments assignments =
    match assignments with
    | [] -> []
    | (column, _) :: rest ->
        let value = take () in
        let rest = rebind_assignments rest in
        (column, value) :: rest
  in
  let rec rebind_values values =
    match values with
    | [] -> []
    | _ :: rest ->
        let v = take () in
        let rest = rebind_values rest in
        v :: rest
  in
  match
    match skeleton with
    | Ast.Select select ->
        let where = rebind_preds select.Ast.where in
        Ast.Select { select with Ast.where }
    | Ast.Select_agg { table; group_by; aggregate; where } ->
        let where = rebind_preds where in
        Ast.Select_agg { table; group_by; aggregate; where }
    | Ast.Insert { table; values } ->
        let values = rebind_values values in
        Ast.Insert { table; values }
    | Ast.Delete { table; where } ->
        let where = rebind_preds where in
        Ast.Delete { table; where }
    | Ast.Update { table; assignments; where } ->
        let assignments = rebind_assignments assignments in
        let where = rebind_preds where in
        Ast.Update { table; assignments; where }
  with
  | statement when !next = n -> Some statement
  | _ -> None
  | exception Rebind_mismatch -> None

let materialize t ~shape ~literals ~parse =
  match Hashtbl.find_opt t.templates shape with
  | Some skeleton -> (
      match rebind skeleton literals with
      | Some statement ->
          t.template_hits <- t.template_hits + 1;
          Obs.Counter.incr m_hits;
          statement
      | None ->
          (* shape-equal texts cannot disagree on literal arity; if they
             somehow do, charge a miss and parse for real *)
          t.misses <- t.misses + 1;
          Obs.Counter.incr m_misses;
          parse ())
  | None ->
      let statement = parse () in
      t.misses <- t.misses + 1;
      Obs.Counter.incr m_misses;
      if Hashtbl.length t.templates >= t.capacity then Hashtbl.reset t.templates;
      Hashtbl.replace t.templates shape statement;
      Obs.Counter.incr m_templates;
      statement

let add_exact t text statement =
  let entry = { statement; cost_tag = None; validated = false } in
  (* Wholesale reset on overflow: dropped entries only lose their memo
     slots ([cost_tag], [validated]), which are recomputed on demand. *)
  if Hashtbl.length t.exact >= t.capacity then Hashtbl.reset t.exact;
  Hashtbl.replace t.exact text entry;
  entry
